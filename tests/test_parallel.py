"""Tests for the parallel batch execution engine (repro.harness.parallel)."""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.harness import parallel
from repro.harness.parallel import (
    BatchExecutionError,
    BatchReport,
    last_batch_report,
    resolve_jobs,
    run_batch,
    run_many,
)
from repro.harness.runner import RunRequest, clear_memory_cache, run
from repro.workloads.registry import clear_trace_cache

SMALL = dict(trace_len=1500, warmup=500)


def _cold():
    clear_memory_cache()
    clear_trace_cache()


def _mixed_batch() -> list[RunRequest]:
    return [
        RunRequest(app="kafka", policy="lru", **SMALL),
        RunRequest(app="kafka", policy="srrip", **SMALL),
        RunRequest(app="clang", policy="flack", **SMALL),
        RunRequest(app="clang", policy="furbys", **SMALL),
    ]


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_is_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() >= 1
        assert resolve_jobs(0) == 1


class TestSerialPath:
    def test_results_in_request_order(self):
        _cold()
        requests = _mixed_batch()
        results = run_many(requests, jobs=1)
        assert len(results) == len(requests)
        for request, stats in zip(requests, results):
            assert stats is run(request)  # memoized: identical object

    def test_duplicates_simulate_once(self):
        _cold()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        results, report = run_batch([request, request, request], jobs=1)
        assert report.requests == 3
        assert report.unique == 1
        assert report.executed == 1
        assert results[0] is results[1] is results[2]

    def test_memory_hits_are_counted(self):
        _cold()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        run(request)
        _, report = run_batch([request], jobs=1)
        assert report.memory_hits == 1
        assert report.executed == 0

    def test_repro_jobs_one_takes_serial_path(self, monkeypatch):
        _cold()
        monkeypatch.setenv("REPRO_JOBS", "1")

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool must not be created for jobs=1")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        results = run_many(_mixed_batch())
        assert len(results) == 4
        assert last_batch_report().jobs == 1

    def test_error_carries_request(self):
        _cold()
        bad = RunRequest(app="kafka", policy="no-such-policy", **SMALL)
        with pytest.raises(BatchExecutionError) as excinfo:
            run_many([RunRequest(app="kafka", policy="lru", **SMALL), bad],
                     jobs=1)
        assert excinfo.value.request == bad


class TestParallelPath:
    def test_bit_identical_to_serial(self):
        _cold()
        requests = _mixed_batch()
        serial = [dataclasses.asdict(stats) for stats in
                  run_many(requests, jobs=1)]
        _cold()
        parallel_results = run_many(requests, jobs=2)
        report = last_batch_report()
        assert report.executed == len(requests)
        assert report.chunks >= 2
        for expected, got in zip(serial, parallel_results):
            assert dataclasses.asdict(got) == expected

    def test_results_written_back_to_memory_cache(self):
        _cold()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        results = run_many([request], jobs=2)
        # A second serial call must be a pure memory hit.
        _, report = run_batch([request], jobs=1)
        assert report.memory_hits == 1
        assert run(request) is results[0]

    def test_worker_error_carries_request(self):
        _cold()
        bad = RunRequest(app="clang", policy="no-such-policy", **SMALL)
        with pytest.raises(BatchExecutionError) as excinfo:
            run_many([RunRequest(app="kafka", policy="lru", **SMALL), bad],
                     jobs=2)
        assert excinfo.value.request == bad
        assert "UnknownPolicyError" in excinfo.value.detail

    def test_disk_write_back_happens_in_parent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _cold()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        run_many([request], jobs=2)
        path = tmp_path / f"{request.cache_key()}.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["request"]["app"] == "kafka"
        assert not list(tmp_path.glob("*.tmp"))


class TestEdgeCases:
    def test_empty_batch(self):
        results, report = run_batch([], jobs=2)
        assert results == []
        assert report.requests == 0
        assert report.executed == 0

    def test_duplicates_simulate_once_in_parallel(self):
        _cold()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        results, report = run_batch([request, request], jobs=2)
        assert report.unique == 1
        assert report.executed == 1
        assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])


class TestScheduler:
    def test_same_app_requests_grouped(self):
        requests = [
            RunRequest(app="kafka", policy="lru", **SMALL),
            RunRequest(app="clang", policy="lru", **SMALL),
            RunRequest(app="kafka", policy="srrip", **SMALL),
            RunRequest(app="clang", policy="srrip", **SMALL),
        ]
        chunks = parallel._chunk_cold_requests(requests, jobs=2)
        assert len(chunks) == 2
        for chunk in chunks:
            assert len({request.app for request in chunk}) == 1

    def test_large_group_split_to_fill_jobs(self):
        requests = [
            RunRequest(app="kafka", policy=policy, **SMALL)
            for policy in ("lru", "srrip", "drrip", "ghrp")
        ]
        chunks = parallel._chunk_cold_requests(requests, jobs=4)
        assert len(chunks) == 4

    def test_singletons_cannot_split_further(self):
        requests = [RunRequest(app="kafka", policy="lru", **SMALL)]
        assert parallel._chunk_cold_requests(requests, jobs=4) == [requests]


class TestBatchReport:
    def test_to_json_roundtrips(self):
        report = BatchReport(requests=4, unique=3, executed=2, jobs=2)
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["requests"] == 4
        assert payload["unique"] == 3

    def test_format_batch_report(self):
        from repro.harness.reporting import format_batch_report
        report = BatchReport(requests=24, unique=18, memory_hits=4,
                             disk_hits=6, executed=8, jobs=4, chunks=3,
                             elapsed_s=12.34)
        line = format_batch_report(report)
        assert "24 requests" in line
        assert "18 unique" in line
        assert "3 chunks on 4 jobs" in line

    def test_serial_formatting(self):
        from repro.harness.reporting import format_batch_report
        line = format_batch_report(BatchReport(requests=1, unique=1,
                                               executed=1, jobs=1))
        assert "serial" in line
