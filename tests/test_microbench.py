"""Smoke tests for the per-stage microbenchmark harness."""

from repro.harness.microbench import (
    check_baseline, fused_sim_batch, microbench_batch, microbench_run,
    profile_run,
)


class TestMicrobenchRun:
    def test_stages_timed_and_results_identical(self):
        result = microbench_run("kafka", "lru", trace_len=800, repeats=1)
        assert result.identical_to_reference
        assert result.trace_gen_s > 0
        assert result.prepare_s > 0
        assert result.pipeline_s > 0
        assert result.reference_s > 0
        assert result.policy_hook_calls > 0
        assert result.lookups_per_s == 800 / result.pipeline_s
        payload = result.to_json()
        assert payload["app"] == "kafka" and payload["policy"] == "lru"

    def test_offline_policy_build_is_timed(self):
        result = microbench_run("kafka", "flack", trace_len=800, repeats=1)
        assert result.identical_to_reference
        # FLACK's future index + solver pass is real work, not a lookup.
        assert result.policy_build_s > 0


class TestMicrobenchBatch:
    def test_aggregate_shape(self):
        report = microbench_batch(
            ("kafka",), ("lru", "srrip"), trace_len=600, repeats=1
        )
        aggregate = report["aggregate"]
        assert aggregate["runs"] == 2
        assert aggregate["total_lookups"] == 1200
        assert aggregate["identical_results"] is True
        assert aggregate["lookups_per_s"] > 0
        assert len(report["results"]) == 2


class TestCheckBaseline:
    def test_within_tolerance_passes(self):
        ok, message = check_baseline(
            {"lookups_per_s": 80.0, "identical_results": True},
            {"lookups_per_s": 100.0},
            tolerance=0.30,
        )
        assert ok and "80" in message

    def test_regression_fails(self):
        ok, message = check_baseline(
            {"lookups_per_s": 60.0, "identical_results": True},
            {"lookups_per_s": 100.0},
            tolerance=0.30,
        )
        assert not ok and "below" in message

    def test_divergence_fails_regardless_of_speed(self):
        ok, message = check_baseline(
            {"lookups_per_s": 1e9, "identical_results": False},
            {"lookups_per_s": 1.0},
        )
        assert not ok and "diverged" in message

    def test_fused_floor_gated_when_both_sides_carry_it(self):
        ok, message = check_baseline(
            {"fused_sim_lookups_per_s": 60.0, "identical_results": True},
            {"lookups_per_s": 100.0, "fused_sim_lookups_per_s": 100.0},
            tolerance=0.30,
        )
        assert not ok and "fused sim" in message and "below" in message

    def test_disjoint_keys_fail_instead_of_passing_vacuously(self):
        ok, message = check_baseline(
            {"fused_sim_lookups_per_s": 1e9, "identical_results": True},
            {"lookups_per_s": 100.0},
        )
        assert not ok and "no throughput keys" in message


class TestFusedSimStage:
    def test_fused_sweep_matches_per_arm_kernels(self):
        report = fused_sim_batch(
            ("kafka",), ("lru", "belady"), trace_len=800, repeats=1
        )
        aggregate = report["aggregate"]
        assert aggregate["identical_results"] is True
        assert aggregate["total_lookups"] == 1600
        assert aggregate["fused_sim_lookups_per_s"] > 0
        assert report["results"][0]["arms"] == 2


def test_profile_run_reports_hot_functions():
    text = profile_run("kafka", "lru", trace_len=600, top=30)
    assert "cumulative" in text
    assert "build_app_trace" in text
    assert "pipeline" in text
