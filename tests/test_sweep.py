"""Tests for the sweep helpers (repro.harness.sweep)."""

from repro.harness.runner import RunRequest
from repro.harness.sweep import associativity_sweep, capacity_sweep, iso_capacity

SMALL = RunRequest(app="kafka", trace_len=1500, warmup=500)


class TestCapacitySweep:
    def test_bigger_caches_miss_less(self):
        results = capacity_sweep("kafka", "lru", (256, 1024), base=SMALL)
        assert results[1024].uops_missed <= results[256].uops_missed

    def test_keys_are_entry_counts(self):
        results = capacity_sweep("kafka", "lru", (512,), base=SMALL)
        assert set(results) == {512}


class TestAssociativitySweep:
    def test_runs_each_way_count(self):
        results = associativity_sweep("kafka", "lru", (4, 8), base=SMALL)
        assert set(results) == {4, 8}
        for stats in results.values():
            assert stats.uops_total > 0


class TestIsoCapacity:
    def test_lru_vs_lru_matches_at_first_scale(self):
        # The reference equals the baseline, so any growth suffices.
        scale = iso_capacity("kafka", reference_policy="lru",
                             scales=(1.25,), trace_len=1500)
        assert scale == 1.25
