"""Tests for the power (CACTI/McPAT) and timing models."""

import pytest

from repro.config import zen3_config, zen4_config
from repro.core.stats import SimulationStats
from repro.errors import ConfigurationError
from repro.power.cacti import cacti_estimate, uop_cache_energy
from repro.power.mcpat import CorePowerModel
from repro.power.ppw import performance_per_watt, ppw_gain
from repro.timing.model import TimingModel


def stats_for(*, lookups=1000, uops=8000, missed=2000, insts=6000,
              branches=800, mispredictions=10, switches=200,
              decoder_uops=None, insertions=300) -> SimulationStats:
    stats = SimulationStats(
        lookups=lookups,
        pw_hits=lookups - 300,
        pw_misses=300,
        uops_total=uops,
        uops_hit=uops - missed,
        uops_missed=missed,
        instructions=insts,
        branches=branches,
        btb_accesses=branches,
        mispredictions=mispredictions,
        path_switches=switches,
        decoder_uops=decoder_uops if decoder_uops is not None else missed,
        icache_accesses=400,
        uop_cache_reads=900,
        uop_cache_writes=insertions,
        insertions=insertions,
        insertion_attempts=insertions,
    )
    return stats


class TestCacti:
    def test_energy_grows_with_capacity(self):
        small = cacti_estimate(16 * 1024, 8)
        large = cacti_estimate(64 * 1024, 8)
        assert large.read_pj > small.read_pj
        assert large.leakage_mw > small.leakage_mw

    def test_energy_grows_with_ways(self):
        low = cacti_estimate(32 * 1024, 4)
        high = cacti_estimate(32 * 1024, 16)
        assert high.read_pj > low.read_pj

    def test_newer_tech_is_cheaper(self):
        old = cacti_estimate(32 * 1024, 8, tech_nm=32)
        new = cacti_estimate(32 * 1024, 8, tech_nm=14)
        assert new.read_pj < old.read_pj

    def test_rejects_unknown_tech(self):
        with pytest.raises(ConfigurationError):
            cacti_estimate(32 * 1024, 8, tech_nm=3)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            cacti_estimate(0, 8)

    def test_uop_cache_energy_uses_entry_bits(self):
        small = uop_cache_energy(256, 8, 8)
        large = uop_cache_energy(1024, 8, 8)
        assert large.read_pj > small.read_pj

    def test_scaled(self):
        base = cacti_estimate(32 * 1024, 8)
        double = base.scaled(2.0)
        assert double.read_pj == pytest.approx(2 * base.read_pj)


class TestMcPat:
    def test_decoder_fraction_matches_paper_reference(self):
        # No-uop-cache core: decoder ~12.5%, icache ~7.7% (Figure 13).
        model = CorePowerModel(zen3_config())
        breakdown = model.breakdown(stats_for(), uop_cache_present=False)
        assert 0.06 < breakdown.fraction("decoder") < 0.20
        assert 0.02 < breakdown.fraction("icache") < 0.15

    def test_uop_cache_saves_energy(self):
        model = CorePowerModel(zen3_config())
        stats = stats_for()
        with_cache = model.breakdown(stats).total
        without = model.breakdown(stats, uop_cache_present=False).total
        assert with_cache < without

    def test_fewer_insertions_save_energy(self):
        model = CorePowerModel(zen3_config())
        many = model.breakdown(stats_for(insertions=600)).total
        few = model.breakdown(stats_for(insertions=100)).total
        assert few < many

    def test_power_positive(self):
        model = CorePowerModel(zen3_config())
        assert model.power_watts(stats_for()) > 0


class TestPpw:
    def test_fewer_misses_improve_ppw(self):
        config = zen3_config()
        base = stats_for(missed=3000, switches=300)
        better = stats_for(missed=1500, switches=300, insertions=200)
        assert ppw_gain(config, better, base) > 0

    def test_identical_runs_have_zero_gain(self):
        config = zen3_config()
        stats = stats_for()
        assert ppw_gain(config, stats, stats) == pytest.approx(0.0)

    def test_ppw_is_instructions_per_joule(self):
        config = zen3_config()
        value = performance_per_watt(config, stats_for())
        assert value > 0


class TestTiming:
    def test_more_decode_work_lowers_ipc(self):
        timing = TimingModel(zen3_config())
        fast = timing.evaluate(stats_for(missed=500, decoder_uops=500))
        slow = timing.evaluate(stats_for(missed=4000, decoder_uops=4000))
        assert fast.ipc > slow.ipc

    def test_mispredictions_cost_cycles(self):
        timing = TimingModel(zen3_config())
        clean = timing.evaluate(stats_for(mispredictions=0))
        flushed = timing.evaluate(stats_for(mispredictions=200))
        assert flushed.cycles > clean.cycles
        assert flushed.flush_cycles > 0

    def test_speedup_vs(self):
        timing = TimingModel(zen3_config())
        base = timing.evaluate(stats_for(missed=4000, decoder_uops=4000))
        better = timing.evaluate(stats_for(missed=1000, decoder_uops=1000))
        assert better.speedup_vs(base) > 0
        assert base.speedup_vs(base) == pytest.approx(0.0)

    def test_ipc_bounded_by_issue_width(self):
        timing = TimingModel(zen3_config())
        result = timing.evaluate(stats_for(missed=0, decoder_uops=0,
                                           mispredictions=0, switches=0))
        per_uop_ipc = zen3_config().core.issue_width
        assert result.ipc <= per_uop_ipc * 1.01

    def test_zen4_wider_issue_raises_ipc_ceiling(self):
        z3 = TimingModel(zen3_config()).evaluate(stats_for(mispredictions=0))
        z4 = TimingModel(zen4_config()).evaluate(stats_for(mispredictions=0))
        assert z4.ipc > z3.ipc
