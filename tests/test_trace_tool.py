"""Tests for the repro-trace CLI tool."""

from repro.tools.trace_tool import main
from repro.workloads.registry import clear_trace_cache, get_trace


class TestTraceTool:
    def test_apps_lists_all(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "kafka" in out and "clang" in out

    def test_generate_head_stats_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "kafka.trace"
        assert main(["generate", "kafka", str(path), "--lookups", "800"]) == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["head", str(path), "--count", "5"]) == 0
        head_out = capsys.readouterr().out
        assert head_out.count("0x") == 5

        assert main(["stats", str(path), "--reuse"]) == 0
        stats_out = capsys.readouterr().out
        assert "lookups            : 800" in stats_out
        assert "PW size distribution" in stats_out
        assert "reuse distance" in stats_out

    def test_stats_histogram_shares_sum(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        main(["generate", "tomcat", str(path), "--lookups", "500"])
        capsys.readouterr()
        main(["stats", str(path)])
        out = capsys.readouterr().out
        shares = [float(line.rsplit(" ", 1)[1].rstrip("%"))
                  for line in out.splitlines() if "#" in line and ":" in line]
        assert 95.0 < sum(shares) < 105.0

    def test_inspect_cache_stats(self, capsys):
        clear_trace_cache()
        get_trace("kafka", n_lookups=600)
        get_trace("kafka", n_lookups=600)
        assert main(["inspect", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "memory hits        : 1" in out
        assert "generated (misses) :" in out
        assert "LRU evictions      : 0" in out
        clear_trace_cache()

    def test_inspect_without_trace_or_flag_errors(self, capsys):
        assert main(["inspect"]) == 2
        err = capsys.readouterr().err
        assert "trace file is required" in err
