"""Tests for the repro-trace CLI tool."""

from repro.tools.trace_tool import main


class TestTraceTool:
    def test_apps_lists_all(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "kafka" in out and "clang" in out

    def test_generate_head_stats_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "kafka.trace"
        assert main(["generate", "kafka", str(path), "--lookups", "800"]) == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["head", str(path), "--count", "5"]) == 0
        head_out = capsys.readouterr().out
        assert head_out.count("0x") == 5

        assert main(["stats", str(path), "--reuse"]) == 0
        stats_out = capsys.readouterr().out
        assert "lookups            : 800" in stats_out
        assert "PW size distribution" in stats_out
        assert "reuse distance" in stats_out

    def test_stats_histogram_shares_sum(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        main(["generate", "tomcat", str(path), "--lookups", "500"])
        capsys.readouterr()
        main(["stats", str(path)])
        out = capsys.readouterr().out
        shares = [float(line.rsplit(" ", 1)[1].rstrip("%"))
                  for line in out.splitlines() if "#" in line and ":" in line]
        assert 95.0 < sum(shares) < 105.0
