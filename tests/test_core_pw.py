"""Unit tests for prediction-window records (repro.core.pw)."""

import pytest

from repro.core.pw import PWLookup, StoredPW, pw_size
from repro.errors import TraceError

from .conftest import pw


class TestPwSize:
    def test_exact_fit(self):
        assert pw_size(8, 8) == 1
        assert pw_size(16, 8) == 2

    def test_rounds_up(self):
        assert pw_size(1, 8) == 1
        assert pw_size(9, 8) == 2
        assert pw_size(17, 8) == 3


class TestPWLookup:
    def test_rejects_zero_uops(self):
        with pytest.raises(TraceError):
            PWLookup(start=0x1000, uops=0, insts=1, bytes_len=4)

    def test_rejects_zero_insts(self):
        with pytest.raises(TraceError):
            PWLookup(start=0x1000, uops=1, insts=0, bytes_len=4)

    def test_rejects_zero_bytes(self):
        with pytest.raises(TraceError):
            PWLookup(start=0x1000, uops=1, insts=1, bytes_len=0)

    def test_size_uses_uops_per_entry(self):
        lookup = pw(0x1000, uops=10)
        assert lookup.size(8) == 2
        assert lookup.size(16) == 1

    def test_end_and_line_overlap(self):
        lookup = PWLookup(start=0x1000, uops=4, insts=4, bytes_len=20)
        assert lookup.end == 0x1014
        assert lookup.overlaps_line(0x1000, 64)
        assert not lookup.overlaps_line(0x1040, 64)
        # Straddling windows overlap both lines.
        straddle = PWLookup(start=0x103C, uops=4, insts=4, bytes_len=16)
        assert straddle.overlaps_line(0x1000, 64)
        assert straddle.overlaps_line(0x1040, 64)


class TestStoredPW:
    def test_from_lookup_computes_size(self):
        stored = StoredPW.from_lookup(pw(0x2000, uops=12), uops_per_entry=8)
        assert stored.size == 2
        assert stored.uops == 12
        assert stored.weight is None

    def test_covers_same_start_smaller_or_equal(self):
        stored = StoredPW.from_lookup(pw(0x2000, uops=10), 8)
        assert stored.covers(pw(0x2000, uops=10))
        assert stored.covers(pw(0x2000, uops=4))  # intermediate exit point
        assert not stored.covers(pw(0x2000, uops=11))  # partial only
        assert not stored.covers(pw(0x2004, uops=4))  # different start

    def test_overlaps_line(self):
        stored = StoredPW.from_lookup(
            PWLookup(start=0x1030, uops=8, insts=6, bytes_len=32), 8
        )
        assert stored.overlaps_line(0x1000, 64)
        assert stored.overlaps_line(0x1040, 64)
        assert not stored.overlaps_line(0x1080, 64)
