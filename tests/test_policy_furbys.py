"""Unit tests for the FURBYS policy mechanics."""

import pytest

from repro.config import UopCacheConfig
from repro.policies.furbys import FurbysPolicy
from repro.uopcache.cache import UopCache
from repro.uopcache.replacement import Bypass

from .conftest import pw


def build(policy, ways=4):
    config = UopCacheConfig(entries=ways * 2, ways=ways, uops_per_entry=8)
    return UopCache(config, policy, set_index=lambda s, n: 0)


def fill_weighted(cache, start_weights, t0=0):
    for t, (start, weight) in enumerate(start_weights, start=t0):
        cache.try_insert(t, pw(start), weight=weight)


class TestWeightBasedEviction:
    def test_min_weight_is_victim(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=0)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 7), (0x200, 1), (0x300, 5), (0x400, 6)])
        cache.try_insert(10, pw(0x500), weight=4)
        assert not cache.contains(0x200)
        assert cache.contains(0x100)

    def test_lru_breaks_weight_ties(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=0)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 3), (0x200, 3), (0x300, 7), (0x400, 7)])
        policy.on_hit(5, 0, cache.probe(pw(0x100)), pw(0x100))
        cache.try_insert(10, pw(0x500), weight=4)
        assert not cache.contains(0x200)  # same weight, least recent

    def test_unhinted_treated_as_coldest(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=0)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 2), (0x200, None), (0x300, 2), (0x400, 2)])
        cache.try_insert(10, pw(0x500), weight=3)
        assert not cache.contains(0x200)


class TestSelectiveBypass:
    def test_low_weight_incoming_is_bypassed(self):
        policy = FurbysPolicy(bypass_margin=1, bypass_floor=8)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 5), (0x200, 5), (0x300, 5), (0x400, 5)])
        result = cache.try_insert(10, pw(0x500), weight=1)  # 1 < 5 - 1
        assert not result.inserted
        assert policy.bypass_decisions == 1

    def test_within_margin_is_inserted(self):
        policy = FurbysPolicy(bypass_margin=1, bypass_floor=8)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 5), (0x200, 5), (0x300, 5), (0x400, 5)])
        result = cache.try_insert(10, pw(0x500), weight=4)  # 4 >= 5 - 1
        assert result.inserted

    def test_bypass_floor_limits_candidates(self):
        policy = FurbysPolicy(bypass_margin=1, bypass_floor=2)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 7), (0x200, 7), (0x300, 7), (0x400, 7)])
        # Weight 3 is below min-K but above the floor: not a candidate.
        assert cache.try_insert(10, pw(0x500), weight=3).inserted

    def test_unhinted_never_bypassed(self):
        policy = FurbysPolicy(bypass_margin=1, bypass_floor=8)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 7), (0x200, 7), (0x300, 7), (0x400, 7)])
        assert cache.try_insert(10, pw(0x500), weight=None).inserted

    def test_free_space_is_always_used(self):
        policy = FurbysPolicy(bypass_margin=1, bypass_floor=8)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 7)])
        assert cache.try_insert(10, pw(0x500), weight=0).inserted

    def test_disabled_bypass(self):
        policy = FurbysPolicy(bypass_enabled=False)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 7), (0x200, 7), (0x300, 7), (0x400, 7)])
        assert cache.try_insert(10, pw(0x500), weight=0).inserted


class TestPitfallDetector:
    def test_repeated_victim_triggers_srrip_fallback(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=2)
        cache = build(policy)
        # A (weight 1) thrashes against I (weight 2) while stale
        # high-weight windows sit resident: the {A, I}^n pitfall.
        fill_weighted(cache, [(0x100, 7), (0x200, 7), (0x300, 7), (0xA00, 1)])
        cache.try_insert(10, pw(0xB00), weight=2)   # evicts A (0xA00)
        assert not cache.contains(0xA00)
        cache.try_insert(11, pw(0xA00), weight=1)   # evicts I (0xB00)
        cache.try_insert(12, pw(0xB00), weight=2)   # victim would be A again
        assert policy.fallback_selections >= 1

    def test_depth_zero_disables_detector(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=0)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 7), (0x200, 7), (0x300, 7), (0xA00, 1)])
        for t in range(10, 20, 2):
            cache.try_insert(t, pw(0xB00), weight=2)
            cache.try_insert(t + 1, pw(0xA00), weight=1)
        assert policy.fallback_selections == 0

    def test_counters_feed_coverage(self):
        policy = FurbysPolicy(bypass_enabled=False)
        build(policy)
        assert policy.primary_selections == 0
        assert policy.fallback_selections == 0


class TestMultiEntryVictims:
    def test_large_incoming_evicts_enough_ways(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=0)
        cache = build(policy)
        fill_weighted(cache, [(0x100, 1), (0x200, 2), (0x300, 7), (0x400, 7)])
        result = cache.try_insert(10, pw(0x500, uops=16), weight=5)
        assert result.inserted
        assert result.evicted_pws == 2
        assert not cache.contains(0x100) and not cache.contains(0x200)

    def test_impossible_request_returns_bypass(self):
        policy = FurbysPolicy(bypass_enabled=False, pitfall_depth=0)
        decision = policy.choose_victims(
            0, 0, __import__("repro.core.pw", fromlist=["StoredPW"]).StoredPW(
                start=0x1, uops=8, insts=6, bytes_len=32, size=1
            ),
            [], need_ways=2,
        )
        # choose_victims with no residents cannot free ways - but an
        # empty set with need>0 never occurs in practice (free space).
        assert not isinstance(decision, Bypass) or decision is not None
