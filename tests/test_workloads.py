"""Tests for the synthetic workload substrate (repro.workloads)."""

import pytest

from repro.errors import ConfigurationError, UnknownWorkloadError
from repro.workloads.apps import (
    APP_PROFILES,
    app_names,
    get_profile,
    scaled_profile,
)
from repro.workloads.cfg import build_cfg
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.registry import (
    available_inputs,
    build_app_trace,
    clear_trace_cache,
    get_trace,
)


class TestCFGConstruction:
    def test_deterministic_for_same_seed(self):
        a = build_cfg(seed=1, functions=10, blocks_per_function=(2, 5),
                      insts_per_block=(3, 6))
        b = build_cfg(seed=1, functions=10, blocks_per_function=(2, 5),
                      insts_per_block=(3, 6))
        assert a.total_insts == b.total_insts
        assert [f.addr for f in a.functions] == [f.addr for f in b.functions]

    def test_different_seed_differs(self):
        a = build_cfg(seed=1, functions=10, blocks_per_function=(2, 5),
                      insts_per_block=(3, 6))
        b = build_cfg(seed=2, functions=10, blocks_per_function=(2, 5),
                      insts_per_block=(3, 6))
        assert [f.addr for f in a.functions] != [f.addr for f in b.functions]

    def test_blocks_are_laid_out_contiguously(self):
        cfg = build_cfg(seed=3, functions=4, blocks_per_function=(3, 3),
                        insts_per_block=(4, 4))
        for function in cfg.functions:
            for first, second in zip(function.blocks, function.blocks[1:]):
                assert second.addr == first.end

    def test_functions_do_not_overlap(self):
        cfg = build_cfg(seed=3, functions=20, blocks_per_function=(2, 6),
                        insts_per_block=(2, 8))
        for first, second in zip(cfg.functions, cfg.functions[1:]):
            assert second.addr >= first.end

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            build_cfg(seed=0, functions=0, blocks_per_function=(1, 2),
                      insts_per_block=(1, 2))
        with pytest.raises(ConfigurationError):
            build_cfg(seed=0, functions=1, blocks_per_function=(5, 2),
                      insts_per_block=(1, 2))


class TestTraceGenerator:
    def _cfg(self):
        return build_cfg(seed=9, functions=25, blocks_per_function=(3, 6),
                         insts_per_block=(3, 8))

    def test_exact_lookup_count(self):
        trace = generate_trace(self._cfg(), 1234, seed=1)
        assert len(trace) == 1234

    def test_deterministic(self):
        a = generate_trace(self._cfg(), 800, seed=42)
        b = generate_trace(self._cfg(), 800, seed=42)
        assert a.lookups == b.lookups

    def test_pws_never_span_line_starts(self):
        # Every instruction of a PW starts within the PW's first line,
        # so the start offset plus length stays under two lines.
        trace = generate_trace(self._cfg(), 2000, seed=7)
        for lookup in trace:
            assert (lookup.start % 64) < 64
            assert lookup.bytes_len <= 64 + 8  # one straddling instruction

    def test_same_start_pws_are_consistent(self):
        # Two lookups with the same start and same uop count must agree
        # on instruction count and byte length (deterministic code).
        trace = generate_trace(self._cfg(), 3000, seed=7)
        seen = {}
        for lookup in trace:
            key = (lookup.start, lookup.uops)
            if key in seen:
                assert seen[key] == (lookup.insts, lookup.bytes_len)
            seen[key] = (lookup.insts, lookup.bytes_len)

    def test_partial_hit_material_exists(self):
        # Same starts with different lengths (Section II-D).
        trace = generate_trace(self._cfg(), 3000, seed=7)
        lengths = {}
        for lookup in trace:
            lengths.setdefault(lookup.start, set()).add(lookup.uops)
        assert any(len(variants) > 1 for variants in lengths.values())

    def test_mpki_calibration(self):
        trace = generate_trace(self._cfg(), 6000, seed=7,
                               target_mispredict_mpki=2.0)
        measured = 1000 * trace.total_mispredictions / trace.total_instructions
        assert 0.6 < measured < 5.0

    def test_rejects_zero_lookups(self):
        with pytest.raises(ConfigurationError):
            generate_trace(self._cfg(), 0, seed=1)

    def test_rejects_empty_cfg(self):
        from repro.workloads.cfg import ProgramCFG
        with pytest.raises(ConfigurationError):
            TraceGenerator(ProgramCFG(), seed=0)

    def test_line_fragments_lack_branches(self):
        trace = generate_trace(self._cfg(), 3000, seed=7)
        fragment = [l for l in trace if not l.terminated_by_branch]
        assert fragment, "expected line-boundary-terminated PWs"
        # Branch-terminated PWs always contain a branch.
        for lookup in trace:
            if lookup.terminated_by_branch:
                assert lookup.contains_branch


class TestAppProfiles:
    def test_eleven_table2_apps(self):
        assert len(APP_PROFILES) == 11
        assert "kafka" in APP_PROFILES and "clang" in APP_PROFILES

    def test_app_names_order_stable(self):
        assert app_names()[0] == "cassandra"

    def test_get_profile_unknown(self):
        with pytest.raises(UnknownWorkloadError):
            get_profile("redis")

    def test_each_app_has_four_inputs(self):
        for app in app_names():
            assert len(available_inputs(app)) == 4

    def test_input_named_unknown(self):
        with pytest.raises(UnknownWorkloadError):
            get_profile("kafka").input_named("huge")

    def test_scaled_profile(self):
        profile = scaled_profile(get_profile("kafka"), 0.5)
        assert profile.functions == get_profile("kafka").functions // 2


class TestRegistry:
    def test_cache_returns_same_object(self):
        a = get_trace("kafka", n_lookups=500)
        b = get_trace("kafka", n_lookups=500)
        assert a is b
        clear_trace_cache()
        c = get_trace("kafka", n_lookups=500)
        assert c is not a
        assert c.lookups == a.lookups  # still deterministic

    def test_inputs_share_static_code(self):
        a = build_app_trace(get_profile("kafka"), "default", 6000)
        b = build_app_trace(get_profile("kafka"), "alt-seed", 6000)
        # Same binary: start addresses overlap heavily across inputs.
        overlap = a.unique_starts() & b.unique_starts()
        assert len(overlap) > 0.3 * len(a.unique_starts())
        assert a.lookups != b.lookups

    def test_metadata_attached(self):
        trace = get_trace("tomcat", n_lookups=300)
        assert trace.metadata.app == "tomcat"
        assert trace.metadata.input_name == "default"


class TestStructureSharing:
    def _generator(self, walk_seed, structure_seed=777):
        from repro.workloads.cfg import build_cfg
        from repro.workloads.generator import TraceGenerator

        cfg = build_cfg(seed=4, functions=30, blocks_per_function=(2, 5),
                        insts_per_block=(3, 6))
        return TraceGenerator(cfg, seed=walk_seed,
                              structure_seed=structure_seed,
                              phase_count=3, phase_length=500)

    def test_same_structure_seed_shares_loops(self):
        a = self._generator(walk_seed=1)
        b = self._generator(walk_seed=2)
        assert a._phase_loops == b._phase_loops
        assert a._phase_perms == b._phase_perms

    def test_different_structure_seed_differs(self):
        a = self._generator(walk_seed=1, structure_seed=10)
        b = self._generator(walk_seed=1, structure_seed=20)
        assert a._phase_loops != b._phase_loops

    def test_phase_loops_share_stable_core(self):
        generator = self._generator(walk_seed=1)
        loops = generator._phase_loops
        shared = sum(
            1 for a, b in zip(loops[0], loops[1]) if a == b
        ) / len(loops[0])
        assert shared >= 0.5  # phase_stability default 0.7, minus churn
