"""Columnar trace engine: packed columns, the v2 binary format, the
disk/LRU trace caches, memo-key hygiene and the shared-memory fan-out.

The contract under test is the house fast-path convention: with
``REPRO_TRACE_FASTPATH=1`` (the default) traces are built and shipped
columnar, with ``=0`` everything degrades to the reference object path
— and both produce bit-identical lookup sequences and results.
"""

import gc
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import (
    BINARY_MAGIC,
    Trace,
    TraceColumns,
    TraceError,
    TraceMetadata,
    callable_token,
)
from repro.uopcache.cache import default_set_index

from .conftest import cyclic_trace as make_cyclic_trace
from .conftest import pw

lookup_strategy = st.builds(
    pw,
    start=st.integers(min_value=0x1000, max_value=0x8000).map(lambda x: x * 16),
    uops=st.integers(min_value=1, max_value=64),
    branch=st.booleans(),
    mispredicted=st.booleans(),
)

lookups_strategy = st.lists(lookup_strategy, min_size=1, max_size=80)


# --- columnar backing store ---------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(lookups_strategy)
def test_columns_roundtrip_materialize(lookups):
    """lookups -> columns -> lookups is the identity."""
    columns = TraceColumns.from_lookups(lookups)
    assert len(columns) == len(lookups)
    assert columns.materialize() == lookups


@settings(max_examples=50, deadline=None)
@given(lookups_strategy)
def test_columns_totals_match_object_scan(lookups):
    uops, insts, branches, mis = TraceColumns.from_lookups(lookups).totals()
    assert uops == sum(pw.uops for pw in lookups)
    assert insts == sum(pw.insts for pw in lookups)
    assert branches == sum(1 for pw in lookups if pw.contains_branch)
    assert mis == sum(1 for pw in lookups if pw.mispredicted)


@settings(max_examples=50, deadline=None)
@given(lookups_strategy)
def test_columns_payload_roundtrip(lookups):
    """columns -> packed bytes -> columns is the identity."""
    columns = TraceColumns.from_lookups(lookups)
    payload = columns.to_payload()
    assert len(payload) == TraceColumns.payload_size(len(lookups))
    restored = TraceColumns.from_payload(payload, len(lookups))
    assert restored == columns
    assert restored.materialize() == lookups


def test_columns_reject_ragged_and_overflow():
    from array import array

    with pytest.raises(TraceError):
        TraceColumns(
            starts=array("Q", [1, 2]), uops=array("I", [1]),
            insts=array("I", [1, 1]), bytes_len=array("I", [1, 1]),
            flags=array("B", [0, 0]),
        )
    with pytest.raises(TraceError):
        TraceColumns.from_lookups([pw(start=1, uops=2 ** 40)])


def test_trace_facade_equivalence_both_backings():
    """A columnar trace and an object trace with the same rows agree on
    every façade query."""
    cyclic_trace = make_cyclic_trace(8, 5)
    columnar = Trace(
        columns=TraceColumns.from_lookups(cyclic_trace.lookups),
        metadata=cyclic_trace.metadata,
    )
    assert columnar.has_columns()
    assert columnar == cyclic_trace
    assert len(columnar) == len(cyclic_trace)
    assert columnar.total_uops == cyclic_trace.total_uops
    assert columnar.total_branches == cyclic_trace.total_branches
    assert columnar.unique_starts() == cyclic_trace.unique_starts()
    assert columnar.slice(2, 7).lookups == cyclic_trace.slice(2, 7).lookups
    prepared_a = columnar.prepared(
        n_sets=8, uops_per_entry=8, line_bytes=64,
        set_index_fn=default_set_index,
    )
    prepared_b = cyclic_trace.prepared(
        n_sets=8, uops_per_entry=8, line_bytes=64,
        set_index_fn=default_set_index,
    )
    assert prepared_a.set_indices == prepared_b.set_indices
    assert prepared_a.entry_sizes == prepared_b.entry_sizes


def test_trace_rejects_both_backings():
    with pytest.raises(TraceError):
        Trace([pw(start=1)], columns=TraceColumns())


def test_pickle_roundtrip_keeps_columns():
    import pickle

    trace = Trace(columns=TraceColumns.from_lookups([pw(start=16, uops=3)]))
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.has_columns()
    assert clone == trace


# --- v1 text <-> v2 binary <-> columnar round-trips ---------------------------

@settings(max_examples=40, deadline=None)
@given(lookups_strategy)
def test_v1_v2_columnar_roundtrips_identical(lookups):
    """All three representations reproduce the same PWLookup sequence."""
    meta = TraceMetadata(app="t", input_name="i", seed=7)
    trace = Trace(columns=TraceColumns.from_lookups(lookups), metadata=meta)

    text = io.StringIO()
    trace.dump(text)
    from_v1 = Trace.parse(io.StringIO(text.getvalue()))

    binary = io.BytesIO()
    trace.dump_binary(binary)
    from_v2 = Trace.parse_binary(io.BytesIO(binary.getvalue()))

    assert from_v1.lookups == lookups
    assert from_v2.lookups == lookups
    assert from_v2.metadata == meta
    # v2 -> v1 -> v2 closes the loop.
    text2 = io.StringIO()
    from_v2.dump(text2)
    assert Trace.parse(io.StringIO(text2.getvalue())).lookups == lookups


def test_v1_legacy_six_field_rows():
    """Pre-contbr v1 rows (6 fields) still parse, defaulting contains
    to the terminator flag."""
    text = (
        "#repro-trace v1\n"
        "#app=legacy input=default seed=3\n"
        "start uops insts bytes branch mispred\n"
        "1000 4 3 16 1 0\n"
        "2000 2 2 8 0 1\n"
    )
    trace = Trace.parse(io.StringIO(text))
    assert trace.metadata.app == "legacy"
    first, second = trace.lookups
    assert first.terminated_by_branch and first.contains_branch
    assert not second.terminated_by_branch and not second.contains_branch
    assert second.mispredicted


def test_v2_truncated_and_corrupt_files():
    trace = Trace(
        columns=TraceColumns.from_lookups([pw(start=32, uops=4)] * 3),
        metadata=TraceMetadata(app="x", input_name="d", seed=1),
    )
    stream = io.BytesIO()
    trace.dump_binary(stream)
    blob = stream.getvalue()

    with pytest.raises(TraceError):  # wrong magic
        Trace.parse_binary(io.BytesIO(b"#not-a-trace...." + blob[16:]))
    with pytest.raises(TraceError):  # truncated header
        Trace.parse_binary(io.BytesIO(blob[:20]))
    with pytest.raises(TraceError):  # truncated column payload
        Trace.parse_binary(io.BytesIO(blob[:-5]))
    with pytest.raises(TraceError):  # trailing junk
        Trace.parse_binary(io.BytesIO(blob + b"x"))


def test_load_any_sniffs_format(tmp_path):
    trace = Trace(
        columns=TraceColumns.from_lookups([pw(start=64, uops=6)]),
        metadata=TraceMetadata(app="s", input_name="d", seed=2),
    )
    v1 = tmp_path / "t.trace"
    v2 = tmp_path / "t.bin"
    trace.save(v1)
    trace.save_binary(v2)
    assert v2.read_bytes().startswith(BINARY_MAGIC)
    assert Trace.load_any(v1).lookups == trace.lookups
    assert Trace.load_any(v2) == trace


# --- generator fast path ------------------------------------------------------

def test_generator_fastpath_bit_identical(monkeypatch):
    """REPRO_TRACE_FASTPATH=0 and =1 emit identical traces."""
    from repro.workloads.apps import get_profile
    from repro.workloads.registry import build_app_trace

    monkeypatch.setenv("REPRO_TRACE_FASTPATH", "0")
    reference = build_app_trace(get_profile("kafka"), "default", 3000)
    assert not reference.has_columns()
    monkeypatch.setenv("REPRO_TRACE_FASTPATH", "1")
    fast = build_app_trace(get_profile("kafka"), "default", 3000)
    assert fast.has_columns()
    assert fast.lookups == reference.lookups
    assert fast.metadata == reference.metadata


# --- registry caches ----------------------------------------------------------

def test_trace_cache_lru_bound(monkeypatch):
    from repro.workloads import registry

    registry.clear_trace_cache()
    monkeypatch.setattr(registry, "TRACE_CACHE_CAP", 2)
    for length in (500, 600, 700):
        registry.get_trace("kafka", "default", length)
    assert len(registry._trace_cache) == 2
    # Oldest (500) evicted; newest two retained.
    assert ("kafka", "default", 500) not in registry._trace_cache
    assert ("kafka", "default", 700) in registry._trace_cache
    assert registry.trace_cache_stats()["evictions"] == 1
    registry.clear_trace_cache()


def test_clear_memory_cache_clears_traces():
    from repro.harness.runner import clear_memory_cache
    from repro.workloads import registry

    registry.get_trace("kafka", "default", 400)
    assert registry._trace_cache
    clear_memory_cache()
    assert not registry._trace_cache


def test_disk_trace_cache_hit(tmp_path, monkeypatch):
    """A second process-cold lookup is served from disk, not generated."""
    from repro.workloads import registry

    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    registry.clear_trace_cache()
    first = registry.get_trace("kafka", "default", 800)
    assert registry.trace_cache_stats()["generated"] == 1
    assert list(tmp_path.glob("trace-*.bin"))
    registry.clear_trace_cache()  # simulate a fresh process
    second = registry.get_trace("kafka", "default", 800)
    stats = registry.trace_cache_stats()
    assert stats["disk_hits"] == 1 and stats["generated"] == 0
    assert second == first
    registry.clear_trace_cache()


# --- memo-key hygiene ---------------------------------------------------------

def test_callable_token_shares_module_functions():
    """Equivalent references to a module-level function share one key."""
    from repro.uopcache import cache as cache_module

    assert callable_token(default_set_index) == callable_token(
        cache_module.default_set_index
    )
    token = callable_token(default_set_index)
    assert isinstance(token, tuple) and token[0] == "fn"


def test_callable_token_does_not_pin_closures():
    def make():
        bound = 3

        def closure(start, n_sets):
            return (start + bound) % n_sets

        return closure

    fn = make()
    token = callable_token(fn)
    import weakref

    assert isinstance(token, weakref.ref)
    del fn
    gc.collect()
    assert token() is None  # the memo key does not keep the closure alive


def test_prepared_shares_pass_across_equivalent_set_index_fns():
    from repro.uopcache import cache as cache_module

    cyclic_trace = make_cyclic_trace(8, 5)
    first = cyclic_trace.prepared(
        n_sets=8, uops_per_entry=8, line_bytes=64,
        set_index_fn=default_set_index,
    )
    second = cyclic_trace.prepared(
        n_sets=8, uops_per_entry=8, line_bytes=64,
        set_index_fn=cache_module.default_set_index,
    )
    assert first is second  # one memo entry, one derivation pass


# --- shared-memory fan-out ----------------------------------------------------

def test_shm_export_attach_roundtrip(monkeypatch):
    """The worker-side attach reconstructs the exact parent trace."""
    pytest.importorskip("multiprocessing.shared_memory")
    from repro.harness.parallel import _attach_traces, _export_traces, _release_segments
    from repro.harness.runner import RunRequest
    from repro.workloads import registry

    monkeypatch.setenv("REPRO_CACHE", "0")
    registry.clear_trace_cache()
    request = RunRequest(app="kafka", policy="lru", trace_len=1200)
    descriptors, segments = _export_traces([request])
    try:
        assert ("kafka", "default", 1200) in descriptors
        parent = registry.get_trace("kafka", "default", 1200)
        registry.clear_trace_cache()  # worker starts cold
        _attach_traces(descriptors)
        seeded = registry._trace_cache[("kafka", "default", 1200)]
        assert seeded.has_columns()
        assert seeded == parent
    finally:
        _release_segments(segments)
        registry.clear_trace_cache()


def test_parallel_batch_identical_with_shm(monkeypatch):
    from repro.harness.parallel import run_batch
    from repro.harness.runner import RunRequest, clear_memory_cache

    monkeypatch.setenv("REPRO_CACHE", "0")
    requests = [
        RunRequest(app=app, policy=policy, trace_len=1500)
        for app in ("kafka", "clang")
        for policy in ("lru", "srrip")
    ]
    clear_memory_cache()
    serial, _ = run_batch(requests, jobs=1)
    clear_memory_cache()
    parallel, report = run_batch(requests, jobs=2)
    assert parallel == serial
    assert report.executed == len(requests)
    clear_memory_cache()
