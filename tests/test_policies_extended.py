"""Unit tests for the extended baselines (DRRIP, Hawkeye)."""

from repro.config import UopCacheConfig
from repro.policies.drrip import DRRIPPolicy, _PSEL_INIT
from repro.policies.hawkeye import HawkeyePolicy, _OptGen
from repro.policies.srrip import RRPV_INSERT, RRPV_MAX
from repro.uopcache.cache import UopCache

from .conftest import pw


def build(policy, ways=4, entries=None, sets_fn=None):
    config = UopCacheConfig(entries=entries or ways * 16, ways=ways,
                            uops_per_entry=8)
    return UopCache(config, policy, set_index=sets_fn or (lambda s, n: 0))


class TestDRRIP:
    def test_leader_sets_are_disjoint(self):
        policy = DRRIPPolicy()
        build(policy)
        assert not (policy._srrip_leaders & policy._brrip_leaders)
        assert policy._psel == _PSEL_INIT

    def test_follower_policy_tracks_psel(self):
        policy = DRRIPPolicy()
        build(policy)
        follower = max(policy._srrip_leaders | policy._brrip_leaders) + 1
        policy._psel = _PSEL_INIT + 10
        assert policy._uses_brrip(follower)
        policy._psel = _PSEL_INIT - 10
        assert not policy._uses_brrip(follower)

    def test_leader_misses_move_psel(self):
        policy = DRRIPPolicy()
        build(policy)
        srrip_leader = next(iter(policy._srrip_leaders))
        brrip_leader = next(iter(policy._brrip_leaders))
        before = policy._psel
        policy.on_miss(0, srrip_leader, pw(0x1))
        assert policy._psel == before + 1
        policy.on_miss(1, brrip_leader, pw(0x2))
        assert policy._psel == before

    def test_brrip_inserts_mostly_distant(self):
        policy = DRRIPPolicy()
        cache = build(policy)
        brrip_leader = next(iter(policy._brrip_leaders))
        from repro.core.pw import StoredPW
        distant = 0
        for i in range(16):
            stored = StoredPW(start=0x100 + i, uops=8, insts=6,
                              bytes_len=24, size=1)
            policy.on_insert(i, brrip_leader, stored)
            if policy.rrpv.get(stored.start) == RRPV_MAX:
                distant += 1
        assert distant >= 14  # bimodal: rare long insertions
        del cache

    def test_srrip_side_inserts_long(self):
        policy = DRRIPPolicy()
        build(policy)
        srrip_leader = next(iter(policy._srrip_leaders))
        from repro.core.pw import StoredPW
        stored = StoredPW(start=0x900, uops=8, insts=6, bytes_len=24, size=1)
        policy.on_insert(0, srrip_leader, stored)
        assert policy.rrpv.get(0x900) == RRPV_INSERT


class TestOptGen:
    def test_first_access_has_no_verdict(self):
        optgen = _OptGen(ways=2)
        assert optgen.access(0x1, 1) is None

    def test_short_reuse_in_empty_set_is_friendly(self):
        optgen = _OptGen(ways=2)
        optgen.access(0x1, 1)
        assert optgen.access(0x1, 1) is True

    def test_overcommitted_interval_is_averse(self):
        optgen = _OptGen(ways=1)
        optgen.access(0x1, 1)
        optgen.access(0x2, 1)   # friendly? first use: None
        assert optgen.access(0x2, 1) is True   # occupies the window
        assert optgen.access(0x1, 1) is False  # capacity already taken

    def test_reuse_past_window_forgotten(self):
        optgen = _OptGen(ways=1)  # window = 8
        optgen.access(0x1, 1)
        for i in range(9):
            optgen.access(0x100 + i, 1)
        assert optgen.access(0x1, 1) is None


class TestHawkeye:
    def test_friendly_insertions_protected(self):
        policy = HawkeyePolicy()
        cache = build(policy)
        from repro.core.pw import StoredPW
        stored = StoredPW(start=0x40, uops=8, insts=6, bytes_len=24, size=1)
        policy.on_insert(0, 0, stored)  # predictor starts friendly
        assert policy.rrpv.get(0x40) == 0
        del cache

    def test_averse_start_inserted_distant(self):
        policy = HawkeyePolicy()
        build(policy)
        from repro.policies.hawkeye import _predictor_index
        policy._predictor[_predictor_index(0x40)] = 0
        from repro.core.pw import StoredPW
        stored = StoredPW(start=0x40, uops=8, insts=6, bytes_len=24, size=1)
        policy.on_insert(0, 0, stored)
        assert policy.rrpv.get(0x40) == RRPV_MAX

    def test_eviction_of_friendly_detrains(self):
        policy = HawkeyePolicy()
        cache = build(policy, ways=2, entries=4)
        from repro.policies.hawkeye import _predictor_index
        index = _predictor_index(0x40)
        before = policy._predictor[index]
        cache.try_insert(0, pw(0x40))
        cache.try_insert(1, pw(0x80))
        cache.try_insert(2, pw(0xC0))  # evicts one friendly line
        assert min(
            policy._predictor[_predictor_index(s)] for s in (0x40, 0x80)
        ) <= before

    def test_runs_through_pipeline(self, small_app_trace):
        from dataclasses import replace
        from repro.config import zen3_config
        from repro.frontend.pipeline import FrontendPipeline

        config = replace(zen3_config(), perfect_icache=True)
        stats = FrontendPipeline(config, HawkeyePolicy()).run(
            small_app_trace, warmup=500
        )
        assert stats.uops_total > 0
        assert 0.0 <= stats.uop_miss_rate <= 1.0
