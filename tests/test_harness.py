"""Tests for the experiment harness (runner, reporting, CLI)."""

import dataclasses
import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import UnknownPolicyError
from repro.harness.reporting import format_table, geometric_mean, mean, percent
from repro.harness.runner import (
    RunRequest,
    RunResult,
    clear_memory_cache,
    run,
)

SMALL = dict(trace_len=1500, warmup=500)


class TestRunRequest:
    def test_cache_key_is_stable(self):
        a = RunRequest(app="kafka", policy="lru")
        b = RunRequest(app="kafka", policy="lru")
        assert a.cache_key() == b.cache_key()

    def test_cache_key_differs_by_field(self):
        a = RunRequest(app="kafka", policy="lru")
        b = RunRequest(app="kafka", policy="srrip")
        c = RunRequest(app="kafka", policy="lru", cache_entries=1024)
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3

    def test_build_config_overrides(self):
        request = RunRequest(app="kafka", cache_entries=1024, cache_ways=16,
                             inclusive=False, perfect=("icache",))
        config = request.build_config()
        assert config.uop_cache.entries == 1024
        assert config.uop_cache.ways == 16
        assert not config.uop_cache.inclusive_with_icache
        assert config.perfect_icache

    def test_resolved_warmup_defaults_to_third(self):
        request = RunRequest(app="kafka", trace_len=3000)
        assert request.resolved_warmup() == 1000


class TestRun:
    def test_basic_run_and_memoization(self):
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        first = run(request)
        second = run(request)
        assert first is second
        assert first.lookups == 1000  # measured window only

    def test_offline_policy_names(self):
        stats = run(RunRequest(app="kafka", policy="belady", **SMALL))
        assert stats.uops_total > 0

    def test_flack_ablation_names(self):
        for name in ("flack[foo]", "flack[A]", "flack[A+VC]", "flack[A+VC+SB]"):
            stats = run(RunRequest(app="kafka", policy=name, **SMALL))
            assert stats.uops_total > 0

    def test_furbys_with_profile_inputs(self):
        stats = run(RunRequest(
            app="kafka", policy="furbys",
            profile_inputs=("alt-seed",), **SMALL,
        ))
        assert stats.uops_total > 0

    def test_thermometer(self):
        stats = run(RunRequest(app="kafka", policy="thermometer", **SMALL))
        assert stats.uops_total > 0

    def test_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            run(RunRequest(app="kafka", policy="plru", **SMALL))

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        first = run(request)
        assert list(tmp_path.glob("*.json"))
        clear_memory_cache()
        second = run(request)  # reloaded from disk
        assert second.uops_missed == first.uops_missed

    def test_corrupt_disk_entry_is_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        path = tmp_path / f"{request.cache_key()}.json"
        path.write_text("{not json")
        stats = run(request)
        assert stats.uops_total > 0


class TestSharedArtifacts:
    """The profiling artifact store behind FURBYS/Thermometer requests."""

    def test_furbys_and_thermometer_share_one_profiling_replay(self, monkeypatch):
        from repro.harness import artifacts
        from repro.profiling import hitrate

        clear_memory_cache()
        replays = []
        original = hitrate.collect_hit_stats

        def counting(*args, **kwargs):
            replays.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(hitrate, "collect_hit_stats", counting)
        run(RunRequest(app="kafka", policy="furbys", **SMALL))
        run(RunRequest(app="kafka", policy="thermometer", **SMALL))
        # Same app/input/geometry/source: one replay serves both, plus
        # any hint-parameter variant.
        run(RunRequest(app="kafka", policy="furbys", hint_bits=2, **SMALL))
        assert len(replays) == 1
        assert artifacts._hitstats_cache

    def test_profile_artifacts_persist_to_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="furbys", **SMALL)
        first = run(request)
        assert list(tmp_path.glob("hitstats-*.json"))
        assert list(tmp_path.glob("profile-*.json"))
        clear_memory_cache()
        second = run(RunRequest(app="kafka", policy="furbys", hint_bits=2,
                                **SMALL))
        assert first.uops_total > 0 and second.uops_total > 0

    def test_corrupt_artifact_is_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="furbys", **SMALL)
        reference = dataclasses.asdict(run(request))
        for path in list(tmp_path.glob("hitstats-*.json")) + list(
            tmp_path.glob("profile-*.json")
        ):
            path.write_text("{torn")
        clear_memory_cache()
        again = dataclasses.asdict(run(request))
        # The simulation result itself still round-trips through the
        # stats cache; force a cold recompute of the profile too.
        for path in tmp_path.glob("*.json"):
            path.unlink()
        clear_memory_cache()
        cold = dataclasses.asdict(run(request))
        assert reference == again == cold

    def test_artifact_sharing_matches_reference_path(self, monkeypatch):
        clear_memory_cache()
        fast = dataclasses.asdict(
            run(RunRequest(app="kafka", policy="furbys", **SMALL))
        )
        monkeypatch.setenv("REPRO_POLICY_FASTPATH", "0")
        clear_memory_cache()
        reference = dataclasses.asdict(
            run(RunRequest(app="kafka", policy="furbys", **SMALL))
        )
        assert fast == reference


def _hammer_same_key(cache_dir: str, rounds: int) -> str:
    """Worker: repeatedly publish the same cache entry (integrity test)."""
    os.environ["REPRO_CACHE"] = "1"
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    from repro.harness.runner import clear_memory_cache, store_stats

    clear_memory_cache()
    request = RunRequest(app="kafka", policy="lru", **SMALL)
    stats = run(request)
    key = request.cache_key()
    for _ in range(rounds):
        store_stats(request, stats, key)
    return key


class TestCacheIntegrity:
    def test_disk_write_is_atomic_under_concurrency(self, tmp_path):
        """Two processes publishing the same key never expose a torn file."""
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        path = tmp_path / f"{request.cache_key()}.json"
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_same_key, str(tmp_path), 40)
                for _ in range(2)
            ]
            # Read concurrently with the writers: every observed state
            # must be complete, valid JSON (os.replace is atomic).
            while not all(f.done() for f in futures):
                if path.exists():
                    payload = json.loads(path.read_text())
                    assert payload["request"]["app"] == "kafka"
            for future in futures:
                assert future.result() == request.cache_key()
        assert json.loads(path.read_text())["request"]["policy"] == "lru"
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_entry_discarded_by_batch_engine(self, tmp_path,
                                                     monkeypatch):
        from repro.harness.parallel import run_many

        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        path = tmp_path / f"{request.cache_key()}.json"
        path.write_text('{"request": {"app": "kafka"')  # truncated write
        stats = run_many([request], jobs=1)[0]
        assert stats.uops_total > 0
        assert json.loads(path.read_text())["stats"]  # rewritten whole

    def test_interrupted_tmp_file_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        (tmp_path / f"{request.cache_key()}.12345.tmp").write_text("{trunc")
        assert run(request).uops_total > 0


class TestQuarantine:
    """Corrupt disk artifacts are set aside as ``*.corrupt``, counted,
    and recomputed — never silently deleted, never trusted."""

    def _entry(self, tmp_path, monkeypatch) -> tuple[RunRequest, object]:
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        run(request)
        return request, tmp_path / f"{request.cache_key()}.json"

    def test_truncated_stats_entry_is_quarantined(self, tmp_path, monkeypatch):
        request, path = self._entry(tmp_path, monkeypatch)
        path.write_text('{"request": {"app": "kafka"')  # torn write
        clear_memory_cache()
        assert run(request).uops_total > 0
        assert (tmp_path / f"{path.name}.corrupt").exists()
        assert json.loads(path.read_text())["stats"]  # rewritten whole

    def test_checksum_mismatch_is_quarantined(self, tmp_path, monkeypatch):
        from repro.harness import resilience

        request, path = self._entry(tmp_path, monkeypatch)
        payload = json.loads(path.read_text())
        assert payload["sha256"]  # new entries are checksummed
        payload["stats"]["uops_total"] = 1  # bit-rot that still parses
        path.write_text(json.dumps(payload))
        clear_memory_cache()
        before = resilience.global_counters()
        stats = run(request)
        assert stats.uops_total != 1
        assert (tmp_path / f"{path.name}.corrupt").exists()
        delta = resilience.counters_since(before)
        assert delta.get("corrupt_artifact", 0) >= 1

    def test_legacy_entry_without_checksum_is_upgraded(
        self, tmp_path, monkeypatch
    ):
        from repro.harness import resilience

        request, path = self._entry(tmp_path, monkeypatch)
        payload = json.loads(path.read_text())
        del payload["sha256"]
        path.write_text(json.dumps(payload))
        clear_memory_cache()
        before = resilience.global_counters()
        assert run(request).uops_total > 0
        assert not (tmp_path / f"{path.name}.corrupt").exists()
        upgraded = json.loads(path.read_text())
        assert upgraded["sha256"]  # rewritten in place with a checksum
        delta = resilience.counters_since(before)
        assert delta.get("note:cache_upgraded", 0) == 1
        # The upgraded entry must now pass full verification.
        clear_memory_cache()
        assert run(request).uops_total > 0

    def test_undecodable_payload_is_quarantined(self, tmp_path, monkeypatch):
        # Valid JSON, valid checksum, wrong shape: caught at decode time.
        from repro.harness.artifacts import _store_json

        request, path = self._entry(tmp_path, monkeypatch)
        _store_json(path, {"request": {}, "stats": {"nonsense": True}})
        clear_memory_cache()
        assert run(request).uops_total > 0
        assert (tmp_path / f"{path.name}.corrupt").exists()

    def _trace_path(self, tmp_path) -> "object":
        bins = [
            p for p in tmp_path.glob("trace-*.bin")
            if not p.name.endswith(".corrupt")
        ]
        assert len(bins) == 1
        return bins[0]

    def _warm_trace(self, tmp_path, monkeypatch):
        from repro.workloads.registry import clear_trace_cache, get_trace

        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        clear_trace_cache()
        trace = get_trace("kafka", "default", 1500)
        clear_trace_cache()
        return trace

    def test_truncated_binary_trace_is_quarantined(
        self, tmp_path, monkeypatch
    ):
        from repro.workloads.registry import get_trace

        reference = self._warm_trace(tmp_path, monkeypatch)
        path = self._trace_path(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        regenerated = get_trace("kafka", "default", 1500)
        assert len(regenerated) == len(reference)
        assert (tmp_path / f"{path.name}.corrupt").exists()

    def test_trace_sidecar_mismatch_is_quarantined(
        self, tmp_path, monkeypatch
    ):
        from repro.harness.artifacts import _trace_sidecar
        from repro.workloads.registry import get_trace

        self._warm_trace(tmp_path, monkeypatch)
        path = self._trace_path(tmp_path)
        sidecar = _trace_sidecar(path)
        assert sidecar.exists()
        sidecar.write_text("0" * 64 + "\n")
        assert len(get_trace("kafka", "default", 1500)) == 1500
        assert (tmp_path / f"{path.name}.corrupt").exists()
        # The quarantine removed the stale sidecar with the entry.
        assert not sidecar.exists() or sidecar.read_text().strip() != "0" * 64


class TestProfileInputOrdering:
    def test_profile_input_order_does_not_change_results(self):
        """Regression: merge order must match the sorted cache key."""
        def stats_for(inputs):
            clear_memory_cache()
            return run(RunRequest(app="kafka", policy="furbys",
                                  profile_inputs=inputs, **SMALL))

        forward = stats_for(("alt-seed", "mixed-load"))
        backward = stats_for(("mixed-load", "alt-seed"))
        assert dataclasses.asdict(forward) == dataclasses.asdict(backward)


class TestRunResultSerialization:
    def test_roundtrip(self):
        request = RunRequest(app="kafka", **SMALL)
        stats = run(request)
        payload = json.loads(json.dumps(RunResult(request, stats).to_json()))
        restored = RunResult.stats_from_json(payload)
        assert restored.uops_missed == stats.uops_missed
        assert restored.miss_breakdown.total == stats.miss_breakdown.total


class TestReporting:
    def test_percent(self):
        assert percent(0.1434) == "+14.34%"
        assert percent(-0.05, 1) == "-5.0%"

    def test_format_table_alignment(self):
        table = format_table(("a", "bb"), [("x", "y"), ("long", "z")])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= 6 for line in lines)

    def test_format_table_title(self):
        table = format_table(("a",), [("1",)], title="T")
        assert table.splitlines()[0] == "T"

    def test_means(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        assert "fig8" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main
        assert main(["fig99"]) == 2

    def test_tab1_runs(self, capsys):
        from repro.cli import main
        assert main(["tab1"]) == 0
        assert "Micro-op cache" in capsys.readouterr().out


class TestBarChart:
    def test_basic_rendering(self):
        from repro.harness.reporting import bar_chart
        chart = bar_chart([("furbys", 0.10), ("lru", 0.0), ("ghrp", -0.02)])
        lines = chart.splitlines()
        assert len(lines) == 3
        assert "+10.00%" in lines[0]
        assert "-" in lines[2]  # negative bar glyph

    def test_empty_items(self):
        from repro.harness.reporting import bar_chart
        assert bar_chart([], title="t") == "t"

    def test_longest_bar_is_the_maximum(self):
        from repro.harness.reporting import bar_chart
        chart = bar_chart([("a", 0.5), ("b", 0.25)], width=20)
        a_line, b_line = chart.splitlines()
        assert a_line.count("#") == 20
        assert b_line.count("#") == 10
