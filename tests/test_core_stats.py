"""Unit tests for simulation statistics (repro.core.stats)."""

import pytest

from repro.core.stats import MissBreakdown, MissClass, SimulationStats


class TestMissBreakdown:
    def test_total_and_fraction(self):
        breakdown = MissBreakdown(cold=10, capacity=80, conflict=10)
        assert breakdown.total == 100
        assert breakdown.fraction(MissClass.CAPACITY) == pytest.approx(0.8)

    def test_fraction_of_empty_is_zero(self):
        assert MissBreakdown().fraction(MissClass.COLD) == 0.0

    def test_add(self):
        breakdown = MissBreakdown()
        breakdown.add(MissClass.CONFLICT, 7)
        assert breakdown.conflict == 7


class TestSimulationStats:
    def test_uop_miss_rate(self):
        stats = SimulationStats(uops_total=200, uops_missed=50)
        assert stats.uop_miss_rate == pytest.approx(0.25)
        assert stats.uop_hit_rate == pytest.approx(0.75)

    def test_empty_rates_are_zero(self):
        stats = SimulationStats()
        assert stats.uop_miss_rate == 0.0
        assert stats.pw_miss_rate == 0.0
        assert stats.bypass_fraction == 0.0

    def test_pw_miss_rate_counts_partials(self):
        stats = SimulationStats(lookups=10, pw_misses=2, pw_partial_hits=1)
        assert stats.pw_miss_rate == pytest.approx(0.3)

    def test_miss_reduction_vs(self):
        base = SimulationStats(uops_total=100, uops_missed=40)
        better = SimulationStats(uops_total=100, uops_missed=30)
        assert better.miss_reduction_vs(base) == pytest.approx(0.25)
        assert base.miss_reduction_vs(base) == 0.0

    def test_miss_reduction_vs_perfect_baseline(self):
        base = SimulationStats(uops_total=100, uops_missed=0)
        assert SimulationStats().miss_reduction_vs(base) == 0.0

    def test_bypass_fraction(self):
        stats = SimulationStats(insertion_attempts=10, bypasses=3)
        assert stats.bypass_fraction == pytest.approx(0.3)

    def test_policy_coverage(self):
        stats = SimulationStats(
            policy_victim_selections=90, fallback_victim_selections=10
        )
        assert stats.policy_coverage == pytest.approx(0.9)

    def test_policy_coverage_defaults_to_one(self):
        assert SimulationStats().policy_coverage == 1.0

    def test_merge_accumulates_everything(self):
        a = SimulationStats(lookups=5, uops_total=40, uops_missed=4,
                            insertions=2, btb_misses=1)
        a.miss_breakdown.add(MissClass.COLD, 4)
        b = SimulationStats(lookups=3, uops_total=24, uops_missed=6,
                            insertions=1, btb_misses=2)
        b.miss_breakdown.add(MissClass.CAPACITY, 6)
        a.merge(b)
        assert a.lookups == 8
        assert a.uops_missed == 10
        assert a.btb_misses == 3
        assert a.miss_breakdown.cold == 4
        assert a.miss_breakdown.capacity == 6
