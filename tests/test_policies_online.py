"""Unit tests for the online replacement policies."""

import pytest

from repro.config import UopCacheConfig
from repro.errors import UnknownPolicyError
from repro.policies import make_policy, online_policy_names
from repro.policies.ghrp import GHRPPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mockingjay import MockingjayPolicy
from repro.policies.ship import SHiPPlusPlusPolicy, signature_of
from repro.policies.srrip import RRPV_HIT, RRPV_INSERT, RRPV_MAX, RRPVTable, SRRIPPolicy
from repro.policies.thermometer import COLD, HOT, WARM, ThermometerPolicy
from repro.uopcache.cache import UopCache

from .conftest import pw


def build(policy, ways=4, entries=8):
    config = UopCacheConfig(entries=entries, ways=ways, uops_per_entry=8)
    return UopCache(config, policy, set_index=lambda s, n: 0)


def fill(cache, starts, t0=0):
    for t, start in enumerate(starts, start=t0):
        cache.try_insert(t, pw(start))


class TestRegistry:
    def test_known_policies(self):
        for name in online_policy_names():
            policy = make_policy(name)
            assert policy.name == name

    def test_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("clock")


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        cache = build(policy)
        fill(cache, [0x100, 0x200, 0x300, 0x400])
        policy.on_hit(10, 0, cache.probe(pw(0x100)), pw(0x100))
        cache.try_insert(11, pw(0x500))
        assert cache.contains(0x100)        # refreshed by the hit
        assert not cache.contains(0x200)    # oldest un-touched

    def test_partial_hit_refreshes(self):
        policy = LRUPolicy()
        cache = build(policy)
        fill(cache, [0x100, 0x200, 0x300, 0x400])
        policy.on_partial_hit(10, 0, cache.probe(pw(0x100)), pw(0x100, 12))
        cache.try_insert(11, pw(0x500))
        assert cache.contains(0x100)


class TestRRPVTable:
    def test_insert_hit_values(self):
        table = RRPVTable()
        table.on_insert(0x1)
        assert table.get(0x1) == RRPV_INSERT
        table.on_hit(0x1)
        assert table.get(0x1) == RRPV_HIT

    def test_unknown_is_distant(self):
        assert RRPVTable().get(0x999) == RRPV_MAX

    def test_aging_promotes_someone_to_distant(self):
        table = RRPVTable()
        from repro.core.pw import StoredPW
        residents = []
        for i, start in enumerate((0x1, 0x2)):
            table.on_insert(start)
            residents.append(StoredPW(start=start, uops=8, insts=6,
                                      bytes_len=32, size=1))
        table.on_hit(0x1)
        order = table.victim_order(residents)
        assert order[0].start == 0x2       # aged to RRPV_MAX first
        assert table.get(0x2) == RRPV_MAX  # aging mutated state


class TestSRRIP:
    def test_hits_protect_lines(self):
        policy = SRRIPPolicy()
        cache = build(policy)
        fill(cache, [0x100, 0x200, 0x300, 0x400])
        for start in (0x100, 0x200, 0x300):
            policy.on_hit(10, 0, cache.probe(pw(start)), pw(start))
        cache.try_insert(20, pw(0x500))
        assert not cache.contains(0x400)  # the only non-promoted line


class TestSHiPPlusPlus:
    def test_signature_is_14_bits(self):
        assert 0 <= signature_of(0xDEADBEEF) < (1 << 14)

    def test_dead_signature_trains_toward_distant_insert(self):
        policy = SHiPPlusPlusPolicy()
        cache = build(policy)
        sig = signature_of(0x100)
        # Insert and evict without reuse twice: counter decrements to 0.
        for t in range(2):
            cache.try_insert(t, pw(0x100))
            cache._remove(t, cache.probe(pw(0x100)),
                          __import__("repro.uopcache.replacement",
                                     fromlist=["EvictionReason"]).EvictionReason.REPLACEMENT)
        assert policy._shct[sig] == 0
        cache.try_insert(10, pw(0x100))
        assert policy.rrpv.get(0x100) == RRPV_MAX  # predicted dead

    def test_reuse_trains_up(self):
        policy = SHiPPlusPlusPolicy()
        cache = build(policy)
        cache.try_insert(0, pw(0x100))
        before = policy._shct[signature_of(0x100)]
        policy.on_hit(1, 0, cache.probe(pw(0x100)), pw(0x100))
        assert policy._shct[signature_of(0x100)] == before + 1


class TestGHRP:
    def test_bypass_mispredict_is_untrained(self):
        policy = GHRPPolicy()
        build(policy)
        signature = policy._signature(0x100)
        for _ in range(4):
            policy._train(signature, dead=True)
        policy._bypassed[0x100] = (signature, 0)
        prediction_before = policy._predict(signature)
        policy.on_lookup(10, 0, pw(0x100))
        assert policy._predict(signature) < prediction_before

    def test_dead_training_on_unreused_eviction(self):
        policy = GHRPPolicy()
        cache = build(policy)
        cache.try_insert(0, pw(0x100))
        stored = cache.probe(pw(0x100))
        sig = policy._sig[0x100]
        before = policy._predict(sig)
        from repro.uopcache.replacement import EvictionReason
        cache._remove(1, stored, EvictionReason.REPLACEMENT)
        assert policy._predict(sig) > before


class TestMockingjay:
    def test_learns_reuse_distance(self):
        policy = MockingjayPolicy()
        build(policy)
        for t in range(6):
            policy.on_lookup(t, 0, pw(0x100))
        assert policy._prediction[0x100] == pytest.approx(1.0)

    def test_overdue_lines_evicted_first(self):
        policy = MockingjayPolicy()
        cache = build(policy)
        # 0x100 has a learned short reuse distance, then goes silent.
        for t in range(4):
            policy.on_lookup(t, 0, pw(0x100))
        fill(cache, [0x100, 0x200, 0x300, 0x400], t0=4)
        # Advance the set clock far beyond 0x100's predicted reuse.
        for t in range(8, 30):
            policy.on_lookup(t, 0, pw(0x200))
            policy.on_hit(t, 0, cache.probe(pw(0x200)), pw(0x200))
        cache.try_insert(40, pw(0x500))
        assert not cache.contains(0x100)


class TestThermometer:
    def test_victim_order_cold_first(self):
        classes = {0x100: HOT, 0x200: COLD, 0x300: WARM}
        policy = ThermometerPolicy(classes)
        cache = build(policy, ways=3, entries=6)
        fill(cache, [0x100, 0x200, 0x300])
        cache.try_insert(10, pw(0x400))
        assert not cache.contains(0x200)  # cold evicted first
        assert cache.contains(0x100)

    def test_cold_bypass_against_all_hot_set(self):
        classes = {0x100: HOT, 0x200: HOT, 0x300: HOT, 0x400: COLD}
        policy = ThermometerPolicy(classes)
        cache = build(policy, ways=3, entries=6)
        fill(cache, [0x100, 0x200, 0x300])
        result = cache.try_insert(10, pw(0x400))
        assert not result.inserted

    def test_unprofiled_defaults_to_cold(self):
        assert ThermometerPolicy({}).temperature(0x1) == COLD
        assert WARM == 1
