"""Unit tests for trace containers and serialization (repro.core.trace)."""

import io

import pytest

from repro.core.trace import Trace, TraceMetadata
from repro.errors import TraceError

from .conftest import pw


def _sample_trace() -> Trace:
    lookups = [
        pw(0x1000, uops=6, mispredicted=True),
        pw(0x1040, uops=3, branch=False, contains_branch=False),
        pw(0x1000, uops=6),
    ]
    return Trace(lookups, TraceMetadata(app="demo", input_name="in0", seed=5))


class TestDerivedProperties:
    def test_lengths_and_iteration(self):
        trace = _sample_trace()
        assert len(trace) == 3
        assert [x.start for x in trace] == [0x1000, 0x1040, 0x1000]
        assert trace[1].uops == 3

    def test_totals(self):
        trace = _sample_trace()
        assert trace.total_uops == 15
        assert trace.total_branches == 2
        assert trace.total_mispredictions == 1

    def test_totals_are_cached_and_length_invalidated(self):
        trace = _sample_trace()
        assert trace.total_uops == 15
        assert "totals" in trace._derived
        # Appending changes the length, which invalidates the memo.
        trace.lookups.append(pw(0x2000, uops=4))
        assert trace.total_uops == 19

    def test_invalidate_derived_after_in_place_mutation(self):
        trace = _sample_trace()
        assert trace.total_uops == 15
        trace.lookups[0] = pw(0x1000, uops=10, mispredicted=True)
        # Same length: the memo is stale until explicitly invalidated.
        assert trace.total_uops == 15
        trace.invalidate_derived()
        assert trace.total_uops == 19

    def test_branch_mpki(self):
        trace = _sample_trace()
        expected = 1000.0 * 2 / trace.total_instructions
        assert trace.branch_mpki == pytest.approx(expected)

    def test_unique_starts(self):
        assert _sample_trace().unique_starts() == {0x1000, 0x1040}

    def test_slice_shares_metadata(self):
        trace = _sample_trace()
        tail = trace.slice(1)
        assert len(tail) == 2
        assert tail.metadata.app == "demo"


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "t.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.lookups == trace.lookups
        assert loaded.metadata.app == "demo"
        assert loaded.metadata.input_name == "in0"
        assert loaded.metadata.seed == 5

    def test_dump_format_is_line_oriented(self):
        buffer = io.StringIO()
        _sample_trace().dump(buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "#repro-trace v1"
        assert len(lines) == 3 + 3  # header, meta, columns + 3 rows

    def test_parse_rejects_bad_header(self):
        with pytest.raises(TraceError):
            Trace.parse(io.StringIO("not a trace\n"))

    def test_parse_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace.parse(io.StringIO(""))

    def test_parse_rejects_wrong_field_count(self):
        text = "#repro-trace v1\n#app=x input=y seed=0\nhdr\n1000 4\n"
        with pytest.raises(TraceError) as err:
            Trace.parse(io.StringIO(text))
        assert "fields" in str(err.value)

    def test_parse_rejects_non_numeric(self):
        text = "#repro-trace v1\n#app=x input=y seed=0\nhdr\n1000 a 1 4 1 1 0\n"
        with pytest.raises(TraceError):
            Trace.parse(io.StringIO(text))

    def test_parse_accepts_legacy_six_field_rows(self):
        text = (
            "#repro-trace v1\n#app=x input=y seed=0\nhdr\n"
            "1000 4 3 16 1 0\n"
        )
        trace = Trace.parse(io.StringIO(text))
        assert trace[0].terminated_by_branch
        assert trace[0].contains_branch  # inferred from termination
        assert not trace[0].mispredicted

    def test_parse_skips_comments_and_blanks(self):
        text = (
            "#repro-trace v1\n#app=x input=y seed=0\nhdr\n"
            "\n# comment\n1000 4 3 16 1 1 0\n"
        )
        trace = Trace.parse(io.StringIO(text))
        assert len(trace) == 1

    def test_from_lookups(self):
        trace = Trace.from_lookups([pw(0x1)], app="unit")
        assert trace.metadata.app == "unit"
        assert len(trace) == 1
