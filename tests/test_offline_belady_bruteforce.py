"""Belady optimality cross-check against exhaustive search.

On tiny single-set caches with uniform-size/uniform-cost PWs, Belady's
MIN (with insertion-time bypass) is provably optimal; this test
enumerates *every* keep/evict schedule on short traces and verifies the
replayed Belady policy matches the exhaustive optimum — the ground
truth anchor for the whole offline stack.
"""

import itertools
from dataclasses import replace

from repro.config import zen3_config
from repro.core.trace import Trace
from repro.frontend.pipeline import FrontendPipeline
from repro.offline.belady import BeladyPolicy

from .conftest import pw


def exhaustive_min_misses(starts: list[int], ways: int) -> int:
    """Brute force: minimum misses for unit-size PWs, capacity ``ways``.

    State: frozenset of resident starts.  On a miss, try every
    possibility (bypass, or evict any resident / use free space).
    """
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def best(index: int, resident: frozenset) -> int:
        if index == len(starts):
            return 0
        start = starts[index]
        if start in resident:
            return best(index + 1, resident)
        miss = 1
        options = [best(index + 1, resident)]  # bypass
        if len(resident) < ways:
            options.append(best(index + 1, resident | {start}))
        else:
            for victim in resident:
                options.append(
                    best(index + 1, (resident - {victim}) | {start})
                )
        return miss + min(options)

    return best(0, frozenset())


def belady_misses(starts: list[int], ways: int) -> int:
    trace = Trace([pw(s * 0x40 + 0x1000, uops=8) for s in starts])
    config = replace(
        zen3_config().with_uop_cache(
            entries=ways, ways=ways, insertion_delay=0
        ),
        perfect_icache=True,
    )
    pipeline = FrontendPipeline(config, BeladyPolicy(trace),
                                set_index=lambda s, n: 0)
    stats = pipeline.run(trace)
    return stats.pw_misses


class TestBeladyOptimality:
    def test_matches_bruteforce_on_fixed_patterns(self):
        patterns = [
            [1, 2, 3, 1, 2, 3],                    # fits? ways=2: thrash
            [1, 2, 1, 3, 1, 2, 1, 3, 1],            # favour pinning 1
            [1, 2, 3, 4, 1, 2, 3, 4],               # pure cycle
            [1, 1, 2, 2, 3, 3, 1, 1],
            [1, 2, 3, 2, 1, 4, 1, 2, 3, 4, 2, 1],
        ]
        for starts in patterns:
            assert belady_misses(starts, ways=2) == exhaustive_min_misses(
                tuple(starts), 2
            ), starts

    def test_matches_bruteforce_on_random_patterns(self):
        import random
        rng = random.Random(12)
        for trial in range(8):
            starts = [rng.randrange(5) for _ in range(12)]
            assert belady_misses(starts, ways=2) == exhaustive_min_misses(
                tuple(starts), 2
            ), (trial, starts)

    def test_three_way_cache(self):
        import random
        rng = random.Random(5)
        for _ in range(5):
            starts = [rng.randrange(6) for _ in range(10)]
            assert belady_misses(starts, ways=3) == exhaustive_min_misses(
                tuple(starts), 3
            ), starts
