"""Tests for the replacement-policy base interface and errors module."""

import pytest

from repro.config import UopCacheConfig
from repro.core.pw import StoredPW
from repro.errors import (
    ConfigurationError,
    FlowError,
    OfflinePolicyError,
    ProfilingError,
    ReproError,
    TraceError,
    UnknownPolicyError,
    UnknownWorkloadError,
)
from repro.uopcache.cache import UopCache
from repro.uopcache.replacement import (
    BYPASS,
    Bypass,
    EvictionReason,
    ReplacementPolicy,
    Victims,
)


def stored(start, size=1, uops=None):
    return StoredPW(start=start, uops=uops or size * 8, insts=4,
                    bytes_len=16, size=size)


class RankByStart(ReplacementPolicy):
    """Toy policy: evict lowest start address first."""

    name = "rank-by-start"

    def victim_order(self, now, set_index, incoming, resident):
        return sorted(resident, key=lambda p: p.start)


class TestBaseChooseVictims:
    def test_greedy_takes_enough_ways(self):
        policy = RankByStart()
        residents = [stored(0x1, 1), stored(0x2, 2), stored(0x3, 1)]
        decision = policy.choose_victims(0, 0, stored(0x9, 3), residents, 3)
        assert isinstance(decision, Victims)
        assert [v.start for v in decision.pws] == [0x1, 0x2]

    def test_returns_bypass_when_impossible(self):
        policy = RankByStart()
        decision = policy.choose_victims(0, 0, stored(0x9, 4),
                                         [stored(0x1, 1)], 4)
        assert isinstance(decision, Bypass)

    def test_default_should_bypass_is_false(self):
        policy = RankByStart()
        assert not policy.should_bypass(0, 0, stored(0x9), [], 1)

    def test_victim_order_not_implemented_by_default(self):
        class Bare(ReplacementPolicy):
            pass

        with pytest.raises(NotImplementedError):
            Bare().victim_order(0, 0, stored(0x9), [])


class TestWiring:
    def test_attach_resets_and_exposes_cache(self):
        policy = RankByStart()
        config = UopCacheConfig(entries=8, ways=4)
        cache = UopCache(config, policy)
        assert policy.cache is cache

    def test_cache_before_attach_raises(self):
        with pytest.raises(RuntimeError):
            RankByStart().cache

    def test_bypass_singleton_repr(self):
        assert repr(BYPASS) == "BYPASS"

    def test_eviction_reasons(self):
        assert {r.value for r in EvictionReason} == {
            "replacement", "inclusive", "upgrade", "flush"
        }


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, TraceError, UnknownWorkloadError,
                    UnknownPolicyError, OfflinePolicyError, FlowError,
                    ProfilingError):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ProfilingError("x")
