"""Arm-fused multi-policy sweeps: bit-identity and resilience.

The fused path (:mod:`repro.frontend.simd_fused`, wired into batches by
the prepass in :mod:`repro.harness.parallel`) must be invisible except
for speed: every arm's stats bit-identical to the per-arm kernels, the
``REPRO_SIM_FUSE=0`` escape hatch restoring the old path end-to-end,
unsupported mixes and injected faults rerouting with counted
``sim_fallback:fused:<reason>`` reasons, and streaming windows changing
nothing but peak memory.

The property suite samples randomized mixed online/offline arm subsets
(seeded, so failures reproduce) at three trace scales and compares the
fused batch against the per-arm reference batch field by field.
"""

from __future__ import annotations

import dataclasses
import gc
import random

import pytest

from repro.core.trace import memo_census
from repro.frontend import simd, simd_fused, simd_offline
from repro.harness.parallel import run_batch
from repro.harness.runner import RunRequest, clear_memory_cache

ONLINE_ARMS = ("lru", "srrip", "random", "ghrp")
OFFLINE_ARMS = (
    "belady", "foo-ohr", "foo-bhr",
    "flack", "flack[foo]", "flack[A]", "flack[A+VC]", "flack[A+VC+SB]",
    "furbys", "thermometer",
)
ARM_POOL = ONLINE_ARMS + OFFLINE_ARMS


def _mixed_subset(rng: random.Random, k: int) -> tuple[str, ...]:
    """k arms, guaranteed to mix families whenever k >= 2."""
    if k == 1:
        return (rng.choice(ARM_POOL),)
    arms = [rng.choice(ONLINE_ARMS), rng.choice(OFFLINE_ARMS)]
    arms += rng.sample([a for a in ARM_POOL if a not in arms], k - 2)
    rng.shuffle(arms)
    return tuple(arms)


def _property_cases() -> list[tuple[str, int, tuple[str, ...]]]:
    rng = random.Random(0xF05ED)
    cases = []
    for trace_len, n_subsets, max_k in ((1000, 3, 8), (20000, 2, 6),
                                        (100000, 1, 3)):
        for _ in range(n_subsets):
            app = rng.choice(("kafka", "clang")) if trace_len < 100000 \
                else "kafka"
            k = rng.randint(1, max_k)
            cases.append((app, trace_len, _mixed_subset(rng, k)))
    return cases


CASES = _property_cases()


def _requests(app: str, trace_len: int, arms: tuple[str, ...]):
    return [RunRequest(app=app, policy=policy, trace_len=trace_len)
            for policy in arms]


def _run_cold(requests, monkeypatch, *, fuse: bool, **env: str):
    """One cold serial batch under the given fused-path env knobs."""
    clear_memory_cache()
    monkeypatch.setenv("REPRO_SIM_FUSE", "1" if fuse else "0")
    for name, value in env.items():
        monkeypatch.setenv(name, value)
    results, report = run_batch(requests, jobs=1)
    assert all(stats is not None for stats in results)
    return [dataclasses.asdict(stats) for stats in results], report


@pytest.mark.parametrize(
    "app,trace_len,arms", CASES,
    ids=[f"{app}-{n}-{'+'.join(a for a in arms)}" for app, n, arms in CASES],
)
def test_fused_batch_bit_identity(app, trace_len, arms, monkeypatch):
    requests = _requests(app, trace_len, arms)
    fused, report = _run_cold(requests, monkeypatch, fuse=True)
    reference, _ = _run_cold(requests, monkeypatch, fuse=False)
    assert fused == reference
    unique = len(set(arms))
    if unique >= 2:
        assert report.faults.fused.get("sim_fused:served") == unique
        assert report.faults.fused.get("sim_fused:groups") == 1
    else:
        assert not report.faults.fused


def test_streaming_window_matches_monolithic(monkeypatch):
    arms = ("lru", "ghrp", "belady", "furbys", "flack[A]")
    requests = _requests("kafka", 20000, arms)
    monolithic, _ = _run_cold(requests, monkeypatch, fuse=True)
    windowed, report = _run_cold(
        requests, monkeypatch, fuse=True, REPRO_SIM_STREAM_WINDOW="4096"
    )
    assert windowed == monolithic
    assert report.faults.fused.get("sim_fused:served") == len(arms)


def test_stream_window_knob_is_clamped(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_STREAM_WINDOW", "7")
    assert simd_fused.stream_window() == 4096
    monkeypatch.setenv("REPRO_SIM_STREAM_WINDOW", "0")
    assert simd_fused.stream_window() == 0
    monkeypatch.setenv("REPRO_SIM_STREAM_WINDOW", "garbage")
    assert simd_fused.stream_window() == 0
    monkeypatch.setenv("REPRO_SIM_STREAM_WINDOW", "50000")
    assert simd_fused.stream_window() == 50000


def test_interleave_mode_bit_identity(monkeypatch):
    arms = ("lru", "srrip", "ghrp", "belady", "thermometer")
    requests = _requests("kafka", 20000, arms)
    interleaved, report = _run_cold(
        requests, monkeypatch, fuse=True, REPRO_SIM_FUSE_MODE="interleave"
    )
    reference, _ = _run_cold(requests, monkeypatch, fuse=False)
    assert interleaved == reference
    assert report.faults.fused.get("sim_fused:served") == len(arms)


def test_fuse_disabled_restores_per_arm_path(monkeypatch):
    requests = _requests("kafka", 1000, ("lru", "belady", "furbys"))
    _, report = _run_cold(requests, monkeypatch, fuse=False)
    assert not report.faults.fused
    assert not report.faults.sim_fallbacks


def test_ineligible_group_falls_back_with_counted_reason(monkeypatch):
    # classify_misses forces the reference loop, so the whole group must
    # reroute to the per-arm path with a counted reason — and still
    # produce results.
    requests = [
        RunRequest(app="kafka", policy=policy, trace_len=1000,
                   classify_misses=True)
        for policy in ("lru", "srrip", "ghrp")
    ]
    results, report = _run_cold(requests, monkeypatch, fuse=True)
    assert not report.faults.fused
    assert any(name.startswith("sim_fallback:fused:")
               for name in report.faults.sim_fallbacks)


def test_injected_fused_fault_reroutes_per_arm(monkeypatch, tmp_path):
    arms = ("lru", "ghrp", "belady", "furbys")
    requests = _requests("kafka", 1000, arms)
    reference, _ = _run_cold(requests, monkeypatch, fuse=False)
    import repro.faultinject as faultinject

    monkeypatch.setenv("REPRO_FAULT_SPEC", "fused:group:raise")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "faults"))
    faultinject.reset_plan_cache()
    try:
        chaos, report = _run_cold(requests, monkeypatch, fuse=True)
    finally:
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        monkeypatch.delenv("REPRO_FAULT_STATE")
        faultinject.reset_plan_cache()
    assert chaos == reference
    assert report.faults.sim_fallbacks.get("sim_fallback:fused:error") == 1
    assert not report.faults.fused
    # The injected failure is informational (the per-arm path absorbed
    # it), so the batch still counts as fault-free execution.
    assert report.faults.skipped == 0 and report.faults.crashed == 0


def test_clear_memory_cache_drops_sim_caches(monkeypatch):
    # striped populates the solo segment caches; a second batch in
    # interleave mode (no clear in between) adds the fused driver.
    _run_cold(_requests("kafka", 1000, ("lru", "belady")),
              monkeypatch, fuse=True)
    monkeypatch.setenv("REPRO_SIM_FUSE_MODE", "interleave")
    results, _ = run_batch(
        _requests("kafka", 1000, ("srrip", "thermometer")), jobs=1
    )
    monkeypatch.delenv("REPRO_SIM_FUSE_MODE")
    assert all(stats is not None for stats in results)
    assert simd.segment_cache_stats()["entries"] >= 1
    assert simd_offline.segment_cache_stats()["entries"] >= 1
    assert simd_fused.fused_cache_stats()["fused_fns"] >= 1
    assert memo_census()["entries"] >= 1
    before = (simd.segment_cache_stats()["evicted"],
              simd_fused.fused_cache_stats()["fused_fns_evicted"])
    clear_memory_cache()
    gc.collect()  # offline kernels self-reference via bound methods
    assert simd.segment_cache_stats()["entries"] == 0
    assert simd_offline.segment_cache_stats()["entries"] == 0
    assert simd_fused.fused_cache_stats()["fused_fns"] == 0
    assert memo_census()["entries"] == 0
    assert simd.segment_cache_stats()["evicted"] > before[0]
    assert simd_fused.fused_cache_stats()["fused_fns_evicted"] > before[1]
