"""Focused tests for interval records and admission plans."""

import pytest

from repro.offline.intervals import Interval
from repro.offline.plan import AdmissionPlan, greedy_admission


def interval(set_index=0, i=0, j=4, t0=0, t1=4, size=1, value=1.0):
    return Interval(set_index=set_index, i_slot=i, j_slot=j,
                    t_start=t0, t_end=t1, size=size, value=value)


class TestInterval:
    def test_duration(self):
        assert interval(i=2, j=7).duration_slots == 5

    def test_density_scales_with_value_size_duration(self):
        dense = interval(value=8.0, size=1, i=0, j=2)
        sparse = interval(value=1.0, size=2, i=0, j=8)
        assert dense.density() > sparse.density()

    def test_density_of_zero_duration_uses_floor(self):
        assert interval(i=3, j=3, value=2.0).density() == 2.0


class TestAdmissionPlan:
    def test_keep_from_defaults_false(self):
        plan = AdmissionPlan(5)
        assert not plan.keep_from(0)
        assert not plan.keep_from(99)   # out of range is safe
        assert not plan.keep_from(-1)

    def test_admit_records_value_and_count(self):
        plan = AdmissionPlan(10)
        plan.considered_count = 2
        plan.admit(interval(t0=3, value=4.0))
        assert plan.keep_from(3)
        assert plan.admitted_value == 4.0
        assert plan.admission_ratio == 0.5

    def test_admission_ratio_empty(self):
        assert AdmissionPlan(1).admission_ratio == 0.0


class TestGreedyAdmissionOrdering:
    def test_prefers_high_density_under_contention(self):
        # Two overlapping intervals, capacity for one: the denser wins.
        cheap = interval(i=0, j=10, t0=0, size=1, value=1.0)
        rich = interval(i=0, j=10, t0=1, size=1, value=9.0)
        plan = greedy_admission([[cheap, rich]], [10], ways=1, trace_len=20)
        assert plan.keep_from(1)
        assert not plan.keep_from(0)

    def test_non_overlapping_intervals_all_admitted(self):
        a = interval(i=0, j=3, t0=0)
        b = interval(i=3, j=6, t0=5)
        plan = greedy_admission([[a, b]], [6], ways=1, trace_len=10)
        assert plan.keep_from(0) and plan.keep_from(5)

    def test_multi_way_capacity_stacks(self):
        overlapping = [interval(i=0, j=4, t0=t, size=1, value=1.0)
                       for t in range(3)]
        plan = greedy_admission([overlapping], [4], ways=2, trace_len=10)
        admitted = sum(plan.keep_from(t) for t in range(3))
        assert admitted == 2

    def test_empty_set_is_fine(self):
        plan = greedy_admission([[]], [0], ways=4, trace_len=1)
        assert plan.admitted_count == 0
