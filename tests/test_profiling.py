"""Tests for the FURBYS profiling pipeline (repro.profiling)."""

from dataclasses import replace

import pytest

from repro.config import zen3_config
from repro.core.trace import Trace
from repro.errors import ProfilingError
from repro.frontend.pipeline import FrontendPipeline
from repro.policies.furbys import FurbysPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.thermometer import COLD, HOT
from repro.profiling import (
    build_hints,
    collect_hit_rates,
    make_furbys,
    profile_application,
    record_lookup_sequence,
    three_class_profile,
)
from repro.profiling.hints import hintable_starts, merge_hints
from repro.profiling.hitrate import make_profile_policy

from .conftest import cyclic_trace, pw


@pytest.fixture(scope="module")
def config():
    return replace(zen3_config(), perfect_icache=True)


@pytest.fixture(scope="module")
def trace():
    from repro.workloads.cfg import build_cfg
    from repro.workloads.generator import generate_trace

    cfg = build_cfg(seed=5, functions=30, blocks_per_function=(3, 7),
                    insts_per_block=(3, 8), mean_iterations=1.5)
    return generate_trace(cfg, 3000, seed=11, phase_length=700, phase_count=2)


class TestStep2:
    def test_lookup_sequence_equals_trace(self, trace):
        assert record_lookup_sequence(trace) == trace.lookups

    def test_zero_capacity_cache_observes_every_lookup_as_miss(self, config):
        # The STEP-2 equivalence claim: with (near-)zero capacity the
        # insertion stream equals the lookup stream.
        tiny = config.with_uop_cache(entries=1, ways=1)
        lookups = [pw(0x1000 + i * 64, 24) for i in range(5)] * 2  # oversize
        pipeline = FrontendPipeline(tiny, LRUPolicy())
        stats = pipeline.run(Trace(lookups))
        assert stats.pw_misses == len(lookups)


class TestHitRates:
    def test_rates_are_fractions(self, trace, config):
        rates = collect_hit_rates(trace, config)
        assert rates
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_custom_policy_override(self, trace, config):
        rates = collect_hit_rates(trace, config, policy=LRUPolicy())
        assert rates

    def test_unknown_source_rejected(self, trace, config):
        with pytest.raises(ProfilingError):
            make_profile_policy("oracle", trace, config)

    def test_known_sources(self, trace, config):
        for source in ("flack", "belady", "foo"):
            assert make_profile_policy(source, trace, config) is not None


class TestHints:
    def test_only_branchful_pws_hintable(self):
        lookups = [pw(0x1, branch=True),
                   pw(0x2, branch=False, contains_branch=False),
                   pw(0x3, branch=False, contains_branch=True)]
        assert hintable_starts(Trace(lookups)) == {0x1, 0x3}

    def test_hint_values_fit_bit_width(self, trace, config):
        rates = collect_hit_rates(trace, config)
        for bits in (1, 3, 4):
            hints = build_hints(trace, rates, n_bits=bits,
                                n_sets=config.uop_cache.sets)
            assert hints
            assert all(0 <= w < (1 << bits) for w in hints.values())

    def test_global_scope(self, trace, config):
        rates = collect_hit_rates(trace, config)
        hints = build_hints(trace, rates, scope="global",
                            n_sets=config.uop_cache.sets)
        assert hints

    def test_invalid_scope_and_bits(self, trace):
        with pytest.raises(ProfilingError):
            build_hints(trace, {}, scope="per_way")
        with pytest.raises(ProfilingError):
            build_hints(trace, {}, n_bits=0)

    def test_merge_hints_averages(self):
        merged = merge_hints([{0x1: 2, 0x2: 7}, {0x1: 4}])
        assert merged[0x1] == 3
        assert merged[0x2] == 7


class TestEndToEnd:
    def test_profile_application_produces_profile(self, trace, config):
        profile = profile_application(trace, config)
        assert profile.hints
        assert profile.n_groups == 8
        assert profile.source == "flack"

    def test_make_furbys_wiring(self, trace, config):
        profile = profile_application(trace, config)
        policy, hints = make_furbys(profile, pitfall_depth=4)
        assert isinstance(policy, FurbysPolicy)
        assert hints is profile.hints

    def test_merged_profiles(self, trace, config):
        a = profile_application(trace, config)
        merged = a.merged_with(a)
        assert merged.hints == a.hints

    def test_merged_profiles_keep_hit_rates(self, trace, config):
        # Regression: merged_with used to drop hit_rates entirely,
        # leaving merged profiles unable to re-cluster or re-merge.
        a = profile_application(trace, config)
        merged = a.merged_with(a)
        assert merged.hit_rates
        assert merged.hit_rates == pytest.approx(a.hit_rates)
        assert merged.sample_counts == {
            start: 2 * count for start, count in a.sample_counts.items()
        }

    def test_merge_weights_by_sample_counts(self):
        from repro.profiling import FurbysProfile

        heavy = FurbysProfile(
            hints={0x1: 3}, hit_rates={0x1: 1.0}, sample_counts={0x1: 90}
        )
        light = FurbysProfile(
            hints={0x1: 1}, hit_rates={0x1: 0.0}, sample_counts={0x1: 10}
        )
        merged = heavy.merged_with(light)
        # 90 samples at 1.0 + 10 at 0.0 -> 0.9, not the unweighted 0.5.
        assert merged.hit_rates[0x1] == pytest.approx(0.9)
        assert merged.sample_counts[0x1] == 100

    def test_merge_defaults_to_uniform_without_counts(self):
        from repro.profiling import FurbysProfile

        a = FurbysProfile(hints={0x1: 2}, hit_rates={0x1: 1.0})
        b = FurbysProfile(hints={0x1: 2}, hit_rates={0x1: 0.0})
        merged = a.merged_with(b)
        assert merged.hit_rates[0x1] == pytest.approx(0.5)

    def test_profile_guided_furbys_beats_unhinted_on_cyclic(self, config):
        # A stationary cyclic workload is the canonical profile win.
        trace = cyclic_trace(96, repeats=30, uops=8)
        warmup = 96 * 5
        profile = profile_application(trace, config)
        policy, hints = make_furbys(profile)
        hinted = FrontendPipeline(config, policy, hints=hints).run(
            trace, warmup=warmup
        )
        unhinted = FrontendPipeline(config, FurbysPolicy()).run(
            trace, warmup=warmup
        )
        assert hinted.uops_missed <= unhinted.uops_missed

    def test_three_class_profile_values(self, trace, config):
        classes = three_class_profile(trace, config)
        assert classes
        assert set(classes.values()) <= {COLD, 1, HOT}
