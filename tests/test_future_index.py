"""Columnar future index and shared offline artifacts vs. references.

The policy-construction fast path (columnar successor arrays, shared
interval decomposition, memoized admission plans) must be semantically
invisible: every query and every derived artifact has to match the
dict+bisect reference implementations exactly.  These tests drive both
layers with randomized traces and arbitrary query points.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.config import UopCacheConfig
from repro.core.trace import Trace, TraceMetadata
from repro.frontend.pipeline import FrontendPipeline
from repro.offline.flack import FLACKPolicy
from repro.offline.future import (
    NEVER,
    ColumnarFutureIndex,
    FutureIndex,
    shared_future_index,
)
from repro.offline.intervals import (
    IdentityMode,
    ValueMetric,
    extract_intervals,
    shared_intervals,
)
from repro.uopcache.cache import default_set_index

from .conftest import pw


def random_trace(n: int = 600, n_starts: int = 40, seed: int = 3) -> Trace:
    """Random lookups over a small start set with varying uop counts.

    Same-start lookups with different lengths exercise the EXACT/START
    identity distinction; hot and one-shot starts both occur.
    """
    rng = random.Random(seed)
    lookups = []
    for _ in range(n):
        start = 0x400000 + rng.randrange(n_starts) * 64
        uops = rng.choice([2, 4, 8, 12])
        lookups.append(pw(start, uops))
    return Trace(lookups, TraceMetadata(app="rand"))


class TestColumnarFutureIndex:
    @pytest.mark.parametrize("identity", [IdentityMode.EXACT, IdentityMode.START])
    def test_next_use_matches_reference_at_lookup_points(self, identity):
        trace = random_trace(seed=11)
        reference = FutureIndex(trace, identity)
        columnar = ColumnarFutureIndex(trace, identity)
        key_fn = identity.key_fn()
        # The replay policies' query pattern: the key observed at t,
        # asked strictly after t.
        for t, lookup in enumerate(trace):
            key = key_fn(lookup)
            assert columnar.next_use(key, t) == reference.next_use(key, t)

    @pytest.mark.parametrize("identity", [IdentityMode.EXACT, IdentityMode.START])
    def test_next_use_matches_reference_at_arbitrary_afters(self, identity):
        trace = random_trace(seed=23)
        reference = FutureIndex(trace, identity)
        columnar = ColumnarFutureIndex(trace, identity)
        key_fn = identity.key_fn()
        keys = list({key_fn(lookup) for lookup in trace})
        rng = random.Random(7)
        for _ in range(3000):
            key = rng.choice(keys)
            after = rng.choice([
                rng.randrange(-5, len(trace) + 5),
                -1, 0, len(trace), sys.maxsize,
            ])
            assert columnar.next_use(key, after) == reference.next_use(key, after)

    def test_absent_key_is_never(self):
        trace = random_trace(n=50, seed=5)
        columnar = ColumnarFutureIndex(trace, IdentityMode.START)
        assert columnar.next_use(0xDEAD_BEEF, 0) == NEVER

    def test_successor_array_matches_pointwise_queries(self):
        trace = random_trace(seed=31)
        identity = IdentityMode.EXACT
        reference = FutureIndex(trace, identity)
        columnar = ColumnarFutureIndex(trace, identity)
        key_fn = identity.key_fn()
        for t, lookup in enumerate(trace):
            assert columnar.succ[t] == reference.next_use(key_fn(lookup), t)

    def test_shared_index_is_memoized_per_identity(self):
        trace = random_trace(n=100, seed=41)
        exact = shared_future_index(trace, IdentityMode.EXACT)
        start = shared_future_index(trace, IdentityMode.START)
        assert shared_future_index(trace, IdentityMode.EXACT) is exact
        assert shared_future_index(trace, IdentityMode.START) is start
        assert exact is not start


class TestSharedIntervals:
    @pytest.mark.parametrize("identity", [IdentityMode.EXACT, IdentityMode.START])
    @pytest.mark.parametrize(
        "metric", [ValueMetric.OHR, ValueMetric.ENTRIES, ValueMetric.UOPS]
    )
    @pytest.mark.parametrize("min_gap", [0, 3])
    def test_matches_reference_extraction(self, identity, metric, min_gap):
        trace = random_trace(seed=57)
        config = UopCacheConfig()
        kwargs = dict(
            identity=identity, metric=metric,
            set_index_fn=default_set_index, min_gap=min_gap,
        )
        ref_sets, ref_slots = extract_intervals(trace, config, **kwargs)
        fast_sets, fast_slots = shared_intervals(trace, config, **kwargs)
        assert fast_slots == ref_slots
        assert fast_sets == ref_sets

    def test_memoized_across_requests(self):
        trace = random_trace(n=100, seed=61)
        config = UopCacheConfig()
        kwargs = dict(
            identity=IdentityMode.EXACT, metric=ValueMetric.OHR,
            set_index_fn=default_set_index, min_gap=0,
        )
        first = shared_intervals(trace, config, **kwargs)
        assert shared_intervals(trace, config, **kwargs) is first


class TestFastPathToggle:
    """REPRO_POLICY_FASTPATH=0 must reproduce the reference behaviour."""

    @pytest.mark.parametrize("policy_name", ["flack[foo]", "flack"])
    def test_policy_stats_identical(self, monkeypatch, zen3, policy_name):
        import dataclasses

        flags = dict(
            async_aware="A" in policy_name or policy_name == "flack",
            variable_cost=policy_name == "flack",
            selective_bypass=policy_name == "flack",
        )
        if policy_name == "flack[foo]":
            flags = dict(
                async_aware=False, variable_cost=False, selective_bypass=False
            )

        def simulate() -> dict:
            trace = random_trace(n=800, seed=77)
            policy = FLACKPolicy(trace, zen3.uop_cache, **flags)
            stats = FrontendPipeline(zen3, policy).run(trace)
            return dataclasses.asdict(stats)

        fast = simulate()
        monkeypatch.setenv("REPRO_POLICY_FASTPATH", "0")
        reference = simulate()
        assert fast == reference

    def test_reference_index_used_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_FASTPATH", "0")
        trace = random_trace(n=100, seed=91)
        index = shared_future_index(trace, IdentityMode.EXACT)
        assert isinstance(index, FutureIndex)
        assert not isinstance(index, ColumnarFutureIndex)

    def test_score_layouts_agree(self, zen3):
        # The two _score implementations (reference dict+bisect vs
        # columnar span+occ) must rank identically for every window at
        # every point in time.
        from repro.core.pw import StoredPW

        trace = random_trace(n=400, seed=97)
        config = zen3.uop_cache
        fast = FLACKPolicy(trace, config)
        assert isinstance(fast.future, ColumnarFutureIndex)
        fast._times = FutureIndex(trace, IdentityMode.START)._times
        rng = random.Random(13)
        for lookup in trace:
            stored = StoredPW.from_lookup(lookup, config.uops_per_entry)
            now = rng.randrange(0, len(trace) + 2)
            assert fast._score_columnar(stored, now) == pytest.approx(
                fast._score_reference(stored, now)
            )
