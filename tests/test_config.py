"""Unit tests for repro.config (Table I presets and validation)."""

import pytest

from repro.config import (
    BranchPredictorConfig,
    CoreConfig,
    ICacheConfig,
    SimulationConfig,
    UopCacheConfig,
    preset,
    zen3_config,
    zen4_config,
)
from repro.errors import ConfigurationError


class TestUopCacheConfig:
    def test_zen3_defaults_match_table1(self):
        config = UopCacheConfig()
        assert config.entries == 512
        assert config.ways == 8
        assert config.uops_per_entry == 8
        assert config.sets == 64
        assert config.inclusive_with_icache

    def test_entries_for_uops_rounds_up(self):
        config = UopCacheConfig()
        assert config.entries_for_uops(1) == 1
        assert config.entries_for_uops(8) == 1
        assert config.entries_for_uops(9) == 2
        assert config.entries_for_uops(24) == 3

    def test_entries_for_uops_rejects_empty_pw(self):
        with pytest.raises(ConfigurationError):
            UopCacheConfig().entries_for_uops(0)

    def test_max_pw_uops(self):
        assert UopCacheConfig().max_pw_uops == 64

    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(ConfigurationError):
            UopCacheConfig(entries=100, ways=8)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            UopCacheConfig(entries=8, ways=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            UopCacheConfig(insertion_delay=-1)


class TestICacheConfig:
    def test_zen3_defaults(self):
        config = ICacheConfig()
        assert config.size_bytes == 32 * 1024
        assert config.sets == 64
        assert config.lines == 512

    def test_rejects_uneven_size(self):
        with pytest.raises(ConfigurationError):
            ICacheConfig(size_bytes=1000, ways=8, line_bytes=64)


class TestCoreAndBranch:
    def test_core_defaults(self):
        core = CoreConfig()
        assert core.issue_width == 6
        assert core.decode_width == 4
        assert core.decode_latency_cycles == 5

    def test_core_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(issue_width=0)

    def test_branch_accuracy_bounds(self):
        with pytest.raises(ConfigurationError):
            BranchPredictorConfig(base_accuracy=0.0)
        with pytest.raises(ConfigurationError):
            BranchPredictorConfig(base_accuracy=1.5)


class TestSimulationConfig:
    def test_with_uop_cache_returns_modified_copy(self):
        config = zen3_config()
        bigger = config.with_uop_cache(entries=1024)
        assert bigger.uop_cache.entries == 1024
        assert config.uop_cache.entries == 512  # original untouched

    def test_with_perfect_flags(self):
        config = zen3_config().with_perfect("uop_cache")
        assert config.perfect_uop_cache
        assert not config.perfect_icache

    def test_with_perfect_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            zen3_config().with_perfect("tlb")

    def test_scaled_uop_cache_preserves_ways(self):
        config = zen3_config().scaled_uop_cache(1.5)
        assert config.uop_cache.ways == 8
        assert config.uop_cache.entries == 768

    def test_scaled_uop_cache_rounds_to_whole_sets(self):
        config = zen3_config().scaled_uop_cache(1.01)
        assert config.uop_cache.entries % config.uop_cache.ways == 0

    def test_presets(self):
        assert preset("zen3").name == "zen3"
        assert preset("zen4").name == "zen4"

    def test_preset_unknown(self):
        with pytest.raises(ConfigurationError):
            preset("zen5")

    def test_zen4_is_larger(self):
        z3, z4 = zen3_config(), zen4_config()
        assert z4.uop_cache.entries > z3.uop_cache.entries
        assert z4.core.issue_width > z3.core.issue_width

    def test_default_config_is_frozen(self):
        config = zen3_config()
        with pytest.raises(AttributeError):
            config.name = "other"  # type: ignore[misc]
